"""Tests for the discrete-event engine: time, syscalls, locks, cells."""

import pytest

from repro.sim.cost_model import CostModel
from repro.sim.engine import DeadlockError, Engine
from repro.sim.primitives import SimCell, SimLock
from repro.sim.syscalls import CAS, Acquire, Delay, Read, Release, TryAcquire, Write, Yield


def run_thread(body, cost_model=None):
    eng = Engine(cost_model)
    tid = eng.spawn(body)
    eng.run()
    return eng, eng.stats[tid]


class TestBasics:
    def test_delay_advances_time(self):
        def body():
            yield Delay(100)
            yield Delay(50)
            return "ok"

        eng, stats = run_thread(body())
        assert eng.now == 150.0
        assert stats.result == "ok"
        assert stats.finished

    def test_negative_delay_rejected(self):
        def body():
            yield Delay(-1)

        eng = Engine()
        eng.spawn(body())
        with pytest.raises(ValueError):
            eng.run()

    def test_unknown_syscall_rejected(self):
        def body():
            yield "not-a-syscall"

        eng = Engine()
        eng.spawn(body())
        with pytest.raises(TypeError):
            eng.run()

    def test_yield_keeps_time(self):
        def body():
            yield Yield()
            return None

        eng, _ = run_thread(body())
        assert eng.now == 0.0

    def test_run_until_pauses(self):
        def body():
            yield Delay(100)
            yield Delay(100)

        eng = Engine()
        eng.spawn(body())
        eng.run(until=100)
        assert eng.now == 100.0
        eng.run()
        assert eng.now == 200.0

    def test_max_events_limits(self):
        def body():
            for _ in range(10):
                yield Delay(1)

        eng = Engine()
        eng.spawn(body())
        eng.run(max_events=3)
        assert eng.events_processed == 3

    def test_spawn_start_time(self):
        def body():
            yield Delay(10)

        eng = Engine()
        tid = eng.spawn(body(), start_time=50.0)
        eng.run()
        assert eng.stats[tid].spawned_at == 0.0
        assert eng.now == 60.0

    def test_threads_run_concurrently(self):
        """Two threads each delaying 100 finish at 100, not 200."""

        def body():
            yield Delay(100)

        eng = Engine()
        eng.spawn(body())
        eng.spawn(body())
        eng.run()
        assert eng.now == 100.0

    def test_live_threads_and_repr(self):
        def body():
            yield Delay(1)

        eng = Engine()
        eng.spawn(body(), name="t0")
        assert eng.live_threads == 1
        assert "threads=1" in repr(eng)
        eng.run()
        assert eng.live_threads == 0


class TestCells:
    def test_read_write(self):
        cell = SimCell(5)

        def body():
            v = yield Read(cell)
            yield Write(cell, v + 1)
            v2 = yield Read(cell)
            return v2

        _eng, stats = run_thread(body())
        assert stats.result == 6
        assert cell.value == 6

    def test_cas_success_and_failure(self):
        cell = SimCell(0)

        def body():
            ok1 = yield CAS(cell, 0, 1)
            ok2 = yield CAS(cell, 0, 2)
            return (ok1, ok2)

        _eng, stats = run_thread(body())
        assert stats.result == (True, False)
        assert cell.value == 1

    def test_same_thread_access_no_transfer(self):
        cell = SimCell(0)

        def body():
            yield Read(cell)
            yield Read(cell)

        eng, _ = run_thread(body())
        assert cell.transfers == 0
        assert eng.now == pytest.approx(2 * eng.cost.read)

    def test_cross_thread_access_pays_transfer(self):
        cell = SimCell(0)

        def toucher():
            yield Read(cell)

        eng = Engine()
        eng.spawn(toucher())
        eng.spawn(toucher())
        eng.run()
        assert cell.transfers == 1
        assert cell.accesses == 2
        assert cell.contention_ratio() == 0.5

    def test_hot_cell_serializes(self):
        """K cross-thread accesses to one cell take >= K * transfer time."""
        cell = SimCell(0)
        cost = CostModel()

        def toucher():
            yield Read(cell)

        eng = Engine(cost)
        for _ in range(8):
            eng.spawn(toucher())
        eng.run()
        # 7 ownership changes, each occupying the line for cache_transfer.
        assert eng.now >= 7 * cost.cache_transfer

    def test_distinct_cells_parallel(self):
        """Accesses to distinct cells do not serialize each other."""
        cost = CostModel()
        cells = [SimCell(0) for _ in range(8)]

        def toucher(c):
            yield Read(c)

        eng = Engine(cost)
        for c in cells:
            eng.spawn(toucher(c))
        eng.run()
        assert eng.now <= cost.read + cost.cache_transfer


class TestLocks:
    def test_try_acquire_success_then_failure(self):
        lock = SimLock()
        results = []

        def holder():
            ok = yield TryAcquire(lock)
            results.append(("holder", ok))
            yield Delay(100)
            yield Release(lock)

        def prober():
            yield Delay(10)
            ok = yield TryAcquire(lock)
            results.append(("prober", ok))

        eng = Engine()
        eng.spawn(holder())
        eng.spawn(prober())
        eng.run()
        assert ("holder", True) in results
        assert ("prober", False) in results
        assert lock.failed_tries == 1
        assert lock.failure_ratio() == 0.5

    def test_blocking_acquire_waits_for_release(self):
        lock = SimLock()
        order = []

        def holder():
            yield Acquire(lock)
            order.append("holder-in")
            yield Delay(100)
            yield Release(lock)
            order.append("holder-out")

        def waiter():
            yield Delay(1)
            yield Acquire(lock)
            order.append("waiter-in")
            yield Release(lock)

        eng = Engine()
        eng.spawn(holder())
        eng.spawn(waiter())
        eng.run()
        assert order.index("holder-in") < order.index("waiter-in")
        assert not lock.locked

    def test_fifo_handoff(self):
        lock = SimLock()
        order = []

        def holder():
            yield Acquire(lock)
            yield Delay(100)
            yield Release(lock)

        def waiter(tag, delay):
            yield Delay(delay)
            yield Acquire(lock)
            order.append(tag)
            yield Release(lock)

        eng = Engine()
        eng.spawn(holder())
        eng.spawn(waiter("first", 1))
        eng.spawn(waiter("second", 2))
        eng.run()
        assert order == ["first", "second"]

    def test_release_by_non_holder_raises(self):
        lock = SimLock()

        def bad():
            yield Release(lock)

        eng = Engine()
        eng.spawn(bad())
        with pytest.raises(RuntimeError):
            eng.run()

    def test_deadlock_detection(self):
        a, b = SimLock("a"), SimLock("b")

        def t1():
            yield Acquire(a)
            yield Delay(10)
            yield Acquire(b)

        def t2():
            yield Acquire(b)
            yield Delay(10)
            yield Acquire(a)

        eng = Engine()
        eng.spawn(t1())
        eng.spawn(t2())
        with pytest.raises(DeadlockError):
            eng.run()

    def test_lock_repr(self):
        lock = SimLock("mylock")
        assert "mylock" in repr(lock)


class TestDeterminism:
    def test_identical_runs_identical_times(self):
        def build():
            cell = SimCell(0)

            def worker(k):
                for _ in range(20):
                    v = yield Read(cell)
                    yield CAS(cell, v, v + 1)
                    yield Delay(5)

            eng = Engine()
            for k in range(4):
                eng.spawn(worker(k))
            eng.run()
            return eng.now, cell.value

        assert build() == build()
