"""Tests for workload drivers and the throughput runner."""

import pytest

from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.concurrent.recorder import OpRecorder
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload, run_throughput_experiment


def _mq_factory(n_queues=8, beta=1.0, recorder=None):
    def make(engine, rng):
        return ConcurrentMultiQueue(engine, n_queues, beta=beta, rng=rng, recorder=recorder)

    return make


class TestAlternatingWorkload:
    def test_validation(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=1)
        with pytest.raises(ValueError):
            AlternatingWorkload(model, 0, 10)
        with pytest.raises(ValueError):
            AlternatingWorkload(model, 2, 0)

    def test_all_ops_complete(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=1)
        model.prefill(range(100))
        workload = AlternatingWorkload(model, 3, 50, rng=2)
        tids = workload.spawn_on(eng)
        eng.run()
        for tid in tids:
            assert eng.stats[tid].result == 100  # 50 inserts + 50 deletes

    def test_population_conserved(self):
        """Alternating insert/delete keeps total size at prefill level."""
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=1)
        model.prefill(range(200))
        AlternatingWorkload(model, 2, 100, rng=3).spawn_on(eng)
        eng.run()
        assert model.total_size() == 200


class TestThroughputRunner:
    def test_result_fields(self):
        res = run_throughput_experiment(_mq_factory(), 4, 50, prefill=500, seed=1)
        assert res.n_threads == 4
        assert res.total_ops == 2 * 4 * 50
        assert res.sim_time > 0
        assert res.throughput == pytest.approx(res.total_ops / (res.sim_time / 1e6))
        assert 0 <= res.lock_failure_ratio < 1
        assert "threads=4" in repr(res)

    def test_deterministic_given_seed(self):
        a = run_throughput_experiment(_mq_factory(), 2, 40, prefill=200, seed=5)
        b = run_throughput_experiment(_mq_factory(), 2, 40, prefill=200, seed=5)
        assert a.sim_time == b.sim_time

    def test_seed_changes_schedule(self):
        a = run_throughput_experiment(_mq_factory(), 2, 40, prefill=200, seed=5)
        b = run_throughput_experiment(_mq_factory(), 2, 40, prefill=200, seed=6)
        assert a.sim_time != b.sim_time

    def test_more_threads_more_throughput_for_multiqueue(self):
        """MultiQueue is the scalable design: 8 threads beat 1 thread."""
        r1 = run_throughput_experiment(_mq_factory(2), 1, 150, prefill=1000, seed=7)
        r8 = run_throughput_experiment(_mq_factory(16), 8, 150, prefill=1000, seed=7)
        assert r8.throughput > 2.0 * r1.throughput
