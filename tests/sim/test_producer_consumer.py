"""Tests for the producer/consumer split workload."""

import numpy as np
import pytest

from repro.concurrent import ConcurrentMultiQueue, LindenJonssonPQ, OpRecorder
from repro.sim.engine import Engine
from repro.sim.workload import ProducerConsumerWorkload


class TestValidation:
    def test_counts_positive(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=1)
        with pytest.raises(ValueError):
            ProducerConsumerWorkload(model, 0, 1, 10)
        with pytest.raises(ValueError):
            ProducerConsumerWorkload(model, 1, 0, 10)
        with pytest.raises(ValueError):
            ProducerConsumerWorkload(model, 1, 1, 0)

    def test_production_must_cover_consumption(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=1)
        with pytest.raises(ValueError):
            ProducerConsumerWorkload(model, 1, 2, 10)


class TestBehaviour:
    def test_all_ops_complete_and_conserve(self):
        eng = Engine()
        rec = OpRecorder()
        model = ConcurrentMultiQueue(eng, 8, rng=2, recorder=rec)
        model.prefill(range(50))
        workload = ProducerConsumerWorkload(model, 3, 2, 200, rng=3)
        tids = workload.spawn_on(eng)
        eng.run()
        for tid in tids:
            assert eng.stats[tid].result == 200
        # 50 prefill + 600 produced - 400 consumed = 250 left.
        assert model.total_size() == 250
        rec.validate()

    def test_consumers_survive_empty_phases(self):
        """Consumers outnumber production rate early; they back off and
        still finish once producers catch up."""
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=4)
        workload = ProducerConsumerWorkload(model, 2, 2, 100, rng=5)
        workload.spawn_on(eng)
        eng.run()
        assert model.total_size() == 0  # 200 produced, 200 consumed

    def test_works_for_strict_queue(self):
        eng = Engine()
        rec = OpRecorder()
        model = LindenJonssonPQ(eng, rng=6, recorder=rec)
        model.prefill(np.arange(20))
        ProducerConsumerWorkload(model, 2, 1, 150, rng=7).spawn_on(eng)
        eng.run()
        rec.validate()
        assert model.total_size() == 20 + 300 - 150
