"""Tests for weighted balls-into-bins."""

import math

import numpy as np
import pytest

from repro.ballsbins.weighted import (
    WeightedBallsIntoBins,
    exponential_weight_gap,
    exponential_weights,
    uniform_weights,
    unit_weights,
)


class TestSamplers:
    def test_exponential_mean_about_one(self, rng):
        w = exponential_weights(rng, 20000)
        assert abs(w.mean() - 1.0) < 0.05

    def test_uniform_bounds(self, rng):
        w = uniform_weights(rng, 1000)
        assert w.min() >= 0 and w.max() <= 2

    def test_unit_constant(self, rng):
        assert np.all(unit_weights(rng, 10) == 1.0)


class TestProcess:
    def test_mass_conserved(self):
        proc = WeightedBallsIntoBins(8, weight_sampler=unit_weights, rng=1)
        proc.insert_many(500)
        assert proc.loads.sum() == pytest.approx(500)
        assert proc.balls == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedBallsIntoBins(0)
        with pytest.raises(ValueError):
            WeightedBallsIntoBins(4, beta=-0.5)

    def test_gap_history_shapes(self):
        proc = WeightedBallsIntoBins(8, rng=2)
        steps, gaps = proc.gap_history(3000, sample_every=1000)
        assert list(steps) == [1000, 2000, 3000]
        assert len(gaps) == 3

    def test_exponential_two_choice_gap_order_log_n(self):
        """[30, Example 2]: expected gap Theta(log n) with Exp(1) weights
        under two-choice — the tightness engine for Theta(n log n)."""
        n = 32
        gaps = [exponential_weight_gap(n, 32 * n * 20, beta=1.0, rng=s) for s in range(5)]
        mean_gap = float(np.mean(gaps))
        # Theta(log n) with modest constants: log(32) ~ 3.5.
        assert 0.5 * math.log(n) < mean_gap < 6 * math.log(n)

    def test_one_choice_weighted_gap_larger(self):
        n, m = 16, 16 * 400
        g_one = np.mean([exponential_weight_gap(n, m, beta=0.0, rng=s) for s in range(4)])
        g_two = np.mean([exponential_weight_gap(n, m, beta=1.0, rng=s) for s in range(4)])
        assert g_one > g_two

    def test_repr(self):
        assert "n=8" in repr(WeightedBallsIntoBins(8))
