"""Tests for graphical balanced allocation."""

import numpy as np
import pytest

from repro.ballsbins.graphical import GraphicalAllocation
from repro.graphs.generators import complete_graph, cycle_graph, random_regular_graph


def _edges(graph):
    return list(graph.edges())


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            GraphicalAllocation(0, [(0, 1)])
        with pytest.raises(ValueError):
            GraphicalAllocation(4, [])
        with pytest.raises(ValueError):
            GraphicalAllocation(2, [(0, 5)])
        with pytest.raises(ValueError):
            GraphicalAllocation(2, [(0,)])  # malformed pair


class TestAllocation:
    def test_mass_conserved(self):
        alloc = GraphicalAllocation(8, _edges(cycle_graph(8)), rng=1)
        alloc.insert_many(400)
        assert alloc.loads.sum() == 400
        assert alloc.balls == 400

    def test_gap_history(self):
        alloc = GraphicalAllocation(8, _edges(cycle_graph(8)), rng=2)
        steps, gaps = alloc.gap_history(2000, sample_every=500)
        assert len(steps) == 4

    def test_complete_graph_matches_two_choice_quality(self):
        """Complete-graph allocation is classic two-choice: small gap."""
        n, m = 16, 16000
        alloc = GraphicalAllocation(n, _edges(complete_graph(n)), rng=3)
        alloc.insert_many(m)
        assert alloc.gap() < 8.0

    def test_expansion_orders_gaps(self):
        """Cycle (poor expander) accumulates a larger gap than a random
        4-regular graph (good expander), which is worse than complete."""
        n, m, reps = 24, 24000, 3
        means = {}
        for name, g in [
            ("cycle", cycle_graph(n)),
            ("regular", random_regular_graph(n, 4, rng=9)),
            ("complete", complete_graph(n)),
        ]:
            gaps = []
            for s in range(reps):
                alloc = GraphicalAllocation(n, _edges(g), rng=50 + s)
                alloc.insert_many(m)
                gaps.append(alloc.gap())
            means[name] = np.mean(gaps)
        assert means["cycle"] > means["regular"] >= means["complete"] * 0.8

    def test_repr(self):
        alloc = GraphicalAllocation(4, [(0, 1)])
        assert "n=4" in repr(alloc)
