"""Tests for classical balls-into-bins processes."""

import numpy as np
import pytest

from repro.ballsbins.processes import (
    BallsIntoBins,
    d_choice_loads,
    gap,
    gap_history,
    one_choice_loads,
    one_plus_beta_loads,
    two_choice_loads,
)


class TestOneChoice:
    def test_total_conserved(self):
        loads = one_choice_loads(16, 1000, rng=1)
        assert loads.sum() == 1000
        assert len(loads) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            one_choice_loads(0, 10)
        with pytest.raises(ValueError):
            one_choice_loads(4, -1)

    def test_zero_balls(self):
        assert one_choice_loads(4, 0, rng=1).sum() == 0


class TestDChoice:
    def test_total_conserved(self):
        loads = d_choice_loads(16, 1000, d=2, rng=2)
        assert loads.sum() == 1000

    def test_tie_break_modes(self):
        for mode in ("random", "index"):
            loads = d_choice_loads(8, 200, d=2, rng=3, tie_break=mode)
            assert loads.sum() == 200
        with pytest.raises(ValueError):
            d_choice_loads(8, 10, tie_break="bogus")

    def test_d_one_equals_one_choice_distributionally(self):
        """d=1 is just uniform throwing; the gap grows like sqrt(m/n)."""
        loads = d_choice_loads(16, 4000, d=1, rng=4)
        assert loads.sum() == 4000

    def test_validation(self):
        with pytest.raises(ValueError):
            d_choice_loads(0, 10)
        with pytest.raises(ValueError):
            d_choice_loads(4, 10, d=0)

    def test_two_choice_gap_much_smaller_than_one_choice(self):
        """The power of two choices, heavily loaded: gap(2-choice) stays
        tiny while gap(1-choice) ~ sqrt(m log n / n)."""
        n, m = 32, 64000
        g1 = gap(one_choice_loads(n, m, rng=5))
        g2 = gap(two_choice_loads(n, m, rng=5))
        assert g2 < g1 / 4
        assert g2 < 8.0


class TestOnePlusBeta:
    def test_total_conserved(self):
        loads = one_plus_beta_loads(16, 2000, beta=0.5, rng=6)
        assert loads.sum() == 2000

    def test_beta_interpolates_gap(self):
        """gap(beta=0) > gap(beta=0.5) > gap(beta=1), on average."""
        n, m, reps = 16, 16000, 5
        gaps = {b: [] for b in (0.0, 0.5, 1.0)}
        for b in gaps:
            for s in range(reps):
                gaps[b].append(gap(one_plus_beta_loads(n, m, beta=b, rng=100 + s)))
        assert np.mean(gaps[0.0]) > np.mean(gaps[0.5]) > np.mean(gaps[1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            one_plus_beta_loads(8, 10, beta=1.5)


class TestGapHistory:
    def test_shapes(self):
        steps, gaps = gap_history(8, 5000, rng=7, sample_every=1000)
        assert len(steps) == len(gaps) == 5
        assert steps[-1] == 5000

    def test_one_choice_gap_grows_two_choice_flat(self):
        steps1, gaps1 = gap_history(16, 40000, d=1, rng=8, sample_every=4000)
        steps2, gaps2 = gap_history(16, 40000, d=2, rng=8, sample_every=4000)
        assert gaps1[-1] > 3 * gaps2[-1]
        assert gaps2[-1] < 8.0


class TestLongLived:
    def test_step_conserves_total(self):
        proc = BallsIntoBins(8, rng=9)
        proc.run(steps=500, prefill=400)
        assert proc.loads.sum() == 400
        assert proc.steps == 500

    def test_delete_on_empty_returns_none(self):
        proc = BallsIntoBins(4, rng=10)
        assert proc.delete_uniform() is None

    def test_insert_returns_bin(self):
        proc = BallsIntoBins(4, rng=11)
        b = proc.insert()
        assert 0 <= b < 4
        assert proc.loads.sum() == 1

    def test_heavily_loaded_gap_stays_bounded(self):
        proc = BallsIntoBins(16, d=2, beta=1.0, rng=12)
        proc.run(steps=20000, prefill=1600)
        assert proc.gap() < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BallsIntoBins(0)
        with pytest.raises(ValueError):
            BallsIntoBins(4, d=0)
        with pytest.raises(ValueError):
            BallsIntoBins(4, beta=2.0)

    def test_repr(self):
        assert "n=4" in repr(BallsIntoBins(4))
