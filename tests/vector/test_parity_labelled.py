"""Parity: vector labelled processes vs their reference counterparts.

Two tiers of evidence:

* **Exact trace equality** — driving the vector engine with a
  :class:`ReferenceMirror` (per-replica generators consumed in the
  reference order) must reproduce each reference run label-for-label:
  same ranks at every step, same top-rank snapshots, same redraw counts.
* **Distributional equality** — with its own i.i.d. choice stream
  (:class:`BatchedChooser`), the vector backend's rank law must be
  KS-indistinguishable from the reference's.
"""

import numpy as np
import pytest

from repro.analysis.stats import ks_2sample
from repro.core.dchoice import DChoiceProcess
from repro.core.policies import biased_insert_probs
from repro.core.process import SequentialProcess
from repro.core.round_robin import RoundRobinProcess
from repro.core.single_choice import SingleChoiceProcess
from repro.vector.chooser import ReferenceMirror
from repro.vector.labelled import (
    VectorDChoiceProcess,
    VectorRoundRobinProcess,
    VectorSequentialProcess,
    VectorSingleChoiceProcess,
)
from repro.vector.sweep import _ks_sample, run_reference_backend, run_vector_backend

SEEDS = list(range(10))


class TestExactTraceParity:
    @pytest.mark.parametrize("beta", [1.0, 0.6, 0.0])
    def test_steady_state_matches_reference(self, beta):
        n, prefill, steps = 16, 400, 403  # steps not a chunk multiple
        cap = prefill + steps
        mirror = ReferenceMirror(n, beta, SEEDS)
        vec = VectorSequentialProcess(n, cap, len(SEEDS), beta=beta, source=mirror)
        result = vec.run_steady_state(prefill, steps, sample_every=50)
        for r, seed in enumerate(SEEDS):
            ref = SequentialProcess(n, cap, beta=beta, rng=np.random.default_rng(seed))
            run = ref.run_steady_state_sampled(prefill, steps, sample_every=50)
            np.testing.assert_array_equal(result.ranks[:, r], run.trace.ranks)
            np.testing.assert_array_equal(
                result.max_top_ranks[:, r], run.max_top_ranks
            )
            np.testing.assert_array_equal(
                result.mean_top_ranks[:, r], run.mean_top_ranks
            )
            assert result.empty_redraws[r] == ref.empty_redraws

    def test_biased_insertion_matches_reference(self):
        n, prefill, steps = 8, 300, 200
        cap = prefill + steps
        pi = biased_insert_probs(n, 0.4)
        mirror = ReferenceMirror(n, 1.0, SEEDS, insert_probs=pi)
        vec = VectorSequentialProcess(
            n, cap, len(SEEDS), beta=1.0, insert_probs=pi, source=mirror
        )
        result = vec.run_steady_state(prefill, steps)
        for r, seed in enumerate(SEEDS):
            ref = SequentialProcess(
                n, cap, beta=1.0, insert_probs=pi, rng=np.random.default_rng(seed)
            )
            trace = ref.run_steady_state(prefill, steps)
            np.testing.assert_array_equal(result.ranks[:, r], trace.ranks)

    def test_prefill_drain_matches_reference(self):
        n, prefill, removals = 8, 500, 333
        mirror = ReferenceMirror(n, 1.0, SEEDS)
        vec = VectorSequentialProcess(n, prefill, len(SEEDS), beta=1.0, source=mirror)
        result = vec.run_prefill_drain(prefill, removals)
        for r, seed in enumerate(SEEDS):
            ref = SequentialProcess(n, prefill, beta=1.0, rng=np.random.default_rng(seed))
            trace = ref.run_prefill_drain(prefill, removals)
            np.testing.assert_array_equal(result.ranks[:, r], trace.ranks)

    def test_single_choice_matches_reference(self):
        n, prefill, steps = 8, 400, 150
        cap = prefill + steps
        mirror = ReferenceMirror(n, 0.0, SEEDS)
        vec = VectorSingleChoiceProcess(n, cap, len(SEEDS), source=mirror)
        result = vec.run_steady_state(prefill, steps)
        for r, seed in enumerate(SEEDS):
            ref = SingleChoiceProcess(n, cap, rng=np.random.default_rng(seed))
            trace = ref.run_steady_state(prefill, steps)
            np.testing.assert_array_equal(result.ranks[:, r], trace.ranks)

    @pytest.mark.parametrize("d", [1, 3])
    def test_dchoice_matches_reference(self, d):
        n, prefill, steps = 8, 400, 150
        cap = prefill + steps
        mirror = ReferenceMirror(n, 1.0, SEEDS)
        vec = VectorDChoiceProcess(n, cap, len(SEEDS), d=d, source=mirror)
        result = vec.run_steady_state(prefill, steps)
        for r, seed in enumerate(SEEDS):
            ref = DChoiceProcess(n, cap, d=d, rng=np.random.default_rng(seed))
            trace = ref.run_steady_state(prefill, steps)
            np.testing.assert_array_equal(result.ranks[:, r], trace.ranks)

    def test_round_robin_matches_reference(self):
        n, prefill, steps = 8, 400, 150
        cap = prefill + steps
        mirror = ReferenceMirror(n, 1.0, SEEDS)
        vec = VectorRoundRobinProcess(n, cap, len(SEEDS), beta=1.0, source=mirror)
        result = vec.run_steady_state(prefill, steps)
        counts = vec.removal_counts()
        for r, seed in enumerate(SEEDS):
            ref = RoundRobinProcess(n, cap, beta=1.0, rng=np.random.default_rng(seed))
            trace = ref.run_steady_state(prefill, steps)
            np.testing.assert_array_equal(result.ranks[:, r], trace.ranks)
            np.testing.assert_array_equal(counts[r], ref.removal_counts())


class TestDistributionalParity:
    @pytest.mark.parametrize("beta", [1.0, 0.5])
    def test_rank_law_ks(self, beta):
        n, prefill, steps, replicas = 32, 3000, 4000, 10
        ref = run_reference_backend(n, beta, prefill, steps, replicas, seed=5)
        vec = run_vector_backend(n, beta, prefill, steps, replicas, seed=99)
        _, p = ks_2sample(_ks_sample(ref.ranks), _ks_sample(vec.ranks))
        assert p > 1e-3, f"rank laws differ (p={p:.2e})"

    def test_mean_rank_within_spread(self):
        n, prefill, steps, replicas = 32, 3000, 4000, 16
        ref = run_reference_backend(n, 1.0, prefill, steps, replicas, seed=5)
        vec = run_vector_backend(n, 1.0, prefill, steps, replicas, seed=99)
        ref_means = ref.ranks.mean(axis=0)
        vec_means = vec.ranks.mean(axis=0)
        pooled_sd = max(ref_means.std(ddof=1), vec_means.std(ddof=1))
        assert abs(ref_means.mean() - vec_means.mean()) < 4 * pooled_sd


class TestVectorApiEdges:
    def test_capacity_exhaustion(self):
        vec = VectorSequentialProcess(4, 100, 3, rng=0)
        with pytest.raises(RuntimeError, match="capacity"):
            vec.run_steady_state(80, 40)

    def test_drain_empty_raises(self):
        vec = VectorSequentialProcess(4, 50, 3, rng=0)
        vec.prefill(10)
        with pytest.raises(LookupError):
            vec.run_drain(11)

    def test_insert_probs_length_validated(self):
        with pytest.raises(ValueError):
            VectorSequentialProcess(4, 50, 2, insert_probs=np.ones(3) / 3)

    def test_bad_d(self):
        with pytest.raises(ValueError):
            VectorDChoiceProcess(4, 50, 2, d=0)

    def test_trace_roundtrip(self):
        vec = VectorSequentialProcess(8, 2000, 4, rng=3)
        result = vec.run_steady_state(1000, 500)
        trace = result.trace(2)
        assert len(trace) == 500
        np.testing.assert_array_equal(trace.ranks, result.ranks[:, 2])
        summary = result.summary()
        assert summary["replicas"] == 4
        assert summary["mean_rank"] > 0
