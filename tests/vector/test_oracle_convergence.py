"""Convergence of the vector backend to the exact stationary oracle.

The acceptance test for the ``repro.analysis.exact`` arbiter: starting
from an all-fresh prefill, the empirical rank law of the vector backend
must *approach* the closed-form stationary law as the run lengthens —
KS distance strictly decreasing along a three-point t-ladder, ending
below an absolute threshold.  This is the property that makes the
oracle usable as a third arbiter in sweeps and service validation: the
deviation column measures distance-from-stationarity, so it has to
shrink on a system that is actually mixing toward the law.

Calibration (n=256, prefill=16384, steps=16000, replicas=64, seed=7):
beta=1.0 walks 0.169 -> 0.066 -> 0.014; beta=0.5 mixes more slowly,
0.291 -> 0.169 -> 0.039.  The 0.05 gate leaves slack above both final
points without letting a non-converging run through (the t=2000 rungs
are 1.3x-3x above it).
"""

import numpy as np
import pytest

from repro.analysis.exact import ExactRankDistribution
from repro.vector.sweep import ORACLE_SAMPLE_CAP, _ks_sample, run_vector_backend

N = 256
LADDER = (250, 2_000, 16_000)
FINAL_KS = 0.05


@pytest.mark.parametrize("beta", [1.0, 0.5])
def test_ks_decreases_along_t_ladder(beta):
    law = ExactRankDistribution(N, beta)
    run = run_vector_backend(
        N, beta, prefill=64 * N, steps=LADDER[-1], replicas=64, seed=7
    )
    # Cumulative windows: each rung scores everything up to step t, so a
    # run stuck away from stationarity cannot luck into a small rung by
    # sampling one favourable stretch.
    ks = [
        law.ks_distance(_ks_sample(run.ranks[:t], cap=ORACLE_SAMPLE_CAP))
        for t in LADDER
    ]
    assert ks[0] > ks[1] > ks[2], f"KS ladder not decreasing: {ks}"
    assert ks[-1] < FINAL_KS, f"final KS {ks[-1]:.4f} >= {FINAL_KS}"
    # The mean converges alongside the full distribution.
    final_mean = float(run.ranks[LADDER[-2]:].mean())
    assert final_mean == pytest.approx(law.mean(), rel=0.10)


def test_oracle_columns_flow_through_sweep_cell():
    # The same arbiter as consumed by ``repro sweep --oracle``: the cell
    # row carries the deviation columns and they reflect a converged run.
    from repro.vector.sweep import sweep_cell_backend

    row = sweep_cell_backend(
        beta=1.0, seed=3, n=64, prefill=4_096, steps=8_000, replicas=32,
        oracle=True,
    )
    law = ExactRankDistribution(64, 1.0)
    assert row["oracle_mean"] == pytest.approx(law.mean())
    assert row["oracle_ks"] < 0.05
    assert row["oracle_mean_err"] < 0.05
    # Out-of-model cells are explicit Nones, not missing keys.
    none_row = sweep_cell_backend(
        beta=1.0, seed=3, n=64, prefill=512, steps=500, replicas=4,
        gamma=0.5, oracle=True,
    )
    assert none_row["oracle_ks"] is None
