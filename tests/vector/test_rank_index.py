"""BatchedRankIndex vs the reference RankOracle, replica by replica."""

import numpy as np
import pytest

from repro.core.rank import RankOracle
from repro.vector.index import BLOCK, BatchedRankIndex


def _mirrored(replicas, capacity):
    index = BatchedRankIndex(replicas, capacity)
    oracles = [RankOracle(capacity) for _ in range(replicas)]
    return index, oracles


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            BatchedRankIndex(0, 10)
        with pytest.raises(ValueError):
            BatchedRankIndex(2, 0)

    def test_insert_out_of_range(self):
        index = BatchedRankIndex(2, 10)
        with pytest.raises(ValueError):
            index.insert_all(10)
        with pytest.raises(ValueError):
            index.insert_all(-1)

    def test_duplicate_insert(self):
        index = BatchedRankIndex(2, 10)
        index.insert_all(3)
        with pytest.raises(ValueError):
            index.insert_all(3)

    def test_remove_absent_label(self):
        index = BatchedRankIndex(2, 10)
        index.insert_all(3)
        with pytest.raises(KeyError):
            index.remove(np.array([3, 4]))

    def test_remove_bad_shape(self):
        index = BatchedRankIndex(2, 10)
        with pytest.raises(ValueError):
            index.remove(np.array([1, 2, 3]))

    def test_bulk_fill_requires_empty(self):
        index = BatchedRankIndex(2, 10)
        index.insert_all(0)
        with pytest.raises(ValueError):
            index.bulk_fill(5)

    def test_grid_bad_shape(self):
        index = BatchedRankIndex(2, 10)
        with pytest.raises(ValueError):
            index.count_leq_grid(np.zeros((3, 4), dtype=np.int64))


class TestAgainstOracle:
    @pytest.mark.parametrize("capacity", [50, BLOCK, 1000])
    def test_ranks_match_oracle_over_random_run_capacities(self, capacity):
        replicas = 4
        rng = np.random.default_rng(7)
        index, oracles = _mirrored(replicas, capacity)
        present = [[] for _ in range(replicas)]
        next_label = 0
        for _ in range(2 * capacity):
            if next_label < capacity and (next_label < 5 or rng.random() < 0.55):
                index.insert_all(next_label)
                for r in range(replicas):
                    oracles[r].insert(next_label)
                    present[r].append(next_label)
                next_label += 1
            elif present[0]:
                labels = np.array(
                    [present[r][rng.integers(len(present[r]))] for r in range(replicas)]
                )
                expected = np.array(
                    [oracles[r].remove(int(labels[r])) for r in range(replicas)]
                )
                np.testing.assert_array_equal(index.remove(labels), expected)
                for r in range(replicas):
                    present[r].remove(int(labels[r]))
        assert index.present_count == oracles[0].present_count

    def test_ranks_match_oracle_over_random_run(self):
        replicas, capacity = 3, 600
        rng = np.random.default_rng(3)
        index, oracles = _mirrored(replicas, capacity)
        present = [[] for _ in range(replicas)]
        next_label = 0
        for _ in range(400):
            if next_label < capacity and (next_label < 20 or rng.random() < 0.55):
                index.insert_all(next_label)
                for r in range(replicas):
                    oracles[r].insert(next_label)
                    present[r].append(next_label)
                next_label += 1
            elif present[0]:
                labels = np.array(
                    [present[r][rng.integers(len(present[r]))] for r in range(replicas)]
                )
                expected = np.array(
                    [oracles[r].remove(int(labels[r])) for r in range(replicas)]
                )
                got = index.remove(labels)
                np.testing.assert_array_equal(got, expected)
                for r in range(replicas):
                    present[r].remove(int(labels[r]))
        assert index.present_count == oracles[0].present_count

    def test_ranks_of_and_grid(self):
        replicas, capacity = 2, 300
        index, oracles = _mirrored(replicas, capacity)
        for label in range(0, capacity, 3):
            index.insert_all(label)
            for o in oracles:
                o.insert(label)
        labels = np.array([30, 153])
        np.testing.assert_array_equal(
            index.ranks_of(labels),
            [oracles[0].rank(30), oracles[1].rank(153)],
        )
        grid = np.array([[0, 5, 299], [1, 100, 298]])
        expected = np.array(
            [[oracles[r].rank_of_value(int(x)) for x in grid[r]] for r in range(replicas)]
        )
        np.testing.assert_array_equal(index.count_leq_grid(grid), expected)

    def test_bulk_fill_matches_inserts(self):
        for m in (0, 1, 63, 64, BLOCK, BLOCK + 1, 500):
            a = BatchedRankIndex(2, 512)
            a.bulk_fill(m)
            b = BatchedRankIndex(2, 512)
            for label in range(m):
                b.insert_all(label)
            assert a.present_count == b.present_count == m
            grid = np.tile(np.arange(0, 512, 17), (2, 1))
            np.testing.assert_array_equal(a.count_leq_grid(grid), b.count_leq_grid(grid))

    def test_apply_chunk_matches_stepwise(self):
        replicas, capacity = 3, 800
        rng = np.random.default_rng(11)
        stepwise = BatchedRankIndex(replicas, capacity)
        chunked = BatchedRankIndex(replicas, capacity)
        for label in range(300):
            stepwise.insert_all(label)
            chunked.insert_all(label)
        # Chunk: insert labels 300..363, remove 64 distinct per replica.
        removed = np.stack(
            [rng.choice(300, size=64, replace=False) for _ in range(replicas)], axis=1
        )
        for t in range(64):
            stepwise.insert_all(300 + t)
            stepwise.remove(removed[t])
        chunked.apply_chunk(300, 64, removed)
        assert stepwise.present_count == chunked.present_count
        grid = np.tile(np.arange(0, capacity, 13), (replicas, 1))
        np.testing.assert_array_equal(
            stepwise.count_leq_grid(grid), chunked.count_leq_grid(grid)
        )

    def test_apply_chunk_insert_range_validation(self):
        index = BatchedRankIndex(2, 100)
        with pytest.raises(ValueError):
            index.apply_chunk(90, 20, None)
