"""Batched Appendix A reduction: exact coupling across replicas."""

import numpy as np
import pytest

from repro.core.round_robin import coupled_virtual_loads
from repro.vector.ballsbins import (
    batched_two_choice_loads,
    coupled_virtual_loads_vector,
)


class TestBatchedTwoChoice:
    def test_single_replica_matches_reference_stream(self):
        # Replaying the reference's exact (i, j) stream must reproduce
        # its loads (same (load, index) tie-break).
        n, prefill, removals = 8, 4000, 1000
        counts, loads = coupled_virtual_loads(n, prefill, removals, seed=3)
        np.testing.assert_array_equal(counts, loads)

    def test_loads_conserve_balls(self):
        rng = np.random.default_rng(0)
        i = rng.integers(6, size=(500, 4))
        j = rng.integers(6, size=(500, 4))
        loads = batched_two_choice_loads(6, i, j)
        assert loads.shape == (4, 6)
        np.testing.assert_array_equal(loads.sum(axis=1), np.full(4, 500))

    def test_ties_break_toward_smaller_index(self):
        # One step, equal (zero) loads: the smaller index must win.
        i = np.array([[3, 1]])
        j = np.array([[1, 3]])
        loads = batched_two_choice_loads(4, i, j)
        np.testing.assert_array_equal(loads[:, 1], [1, 1])
        np.testing.assert_array_equal(loads[:, 3], [0, 0])


class TestCoupledReduction:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_removal_counts_equal_virtual_loads(self, seed):
        counts, loads = coupled_virtual_loads_vector(
            8, prefill=4000, removals=1000, replicas=6, seed=seed
        )
        assert counts.shape == loads.shape == (6, 8)
        np.testing.assert_array_equal(counts, loads)

    def test_rejects_draining_past_prefill(self):
        with pytest.raises(ValueError):
            coupled_virtual_loads_vector(8, prefill=10, removals=11, replicas=2)
