"""Parity: vector exponential process vs the reference (Theorem 2 side).

The exponential generation uses rectangular renewal arrays instead of
the reference's heap merge, so traces are *not* RNG-coupled — parity
here is distributional: the bin-assignment law (i.i.d. ``pi``), the
rank law under (1+beta) removals, and the Theorem 2 equivalence with the
labelled process.
"""

import numpy as np
import pytest

from repro.analysis.stats import ks_2sample
from repro.core.exponential import ExponentialProcess, ExponentialTopProcess
from repro.core.potential import recommended_alpha
from repro.vector.exponential import (
    VectorExponentialProcess,
    VectorExponentialTopProcess,
)
from repro.vector.labelled import VectorSequentialProcess
from repro.vector.sweep import _ks_sample


class TestGeneration:
    def test_bin_assignment_is_iid_pi(self):
        # Pooled across replicas, bin counts must match the multinomial
        # law within a loose chi-square-style tolerance.
        n, m, replicas = 8, 2000, 16
        pi = np.asarray([0.3, 0.2, 0.15, 0.1, 0.1, 0.05, 0.05, 0.05])
        proc = VectorExponentialProcess(
            n, m, replicas, beta=1.0, insert_probs=pi, rng=2
        )
        proc.generate(m)
        assign = proc.bin_assignment()
        assert assign.shape == (replicas, m)
        freq = np.bincount(assign.reshape(-1), minlength=n) / (m * replicas)
        np.testing.assert_allclose(freq, pi, atol=0.01)

    def test_uniform_assignment_frequencies(self):
        n, m, replicas = 16, 4000, 8
        proc = VectorExponentialProcess(n, m, replicas, rng=3)
        proc.generate(m)
        freq = np.bincount(proc.bin_assignment().reshape(-1), minlength=n)
        np.testing.assert_allclose(freq / (m * replicas), np.full(n, 1 / n), atol=0.01)

    def test_single_generation_only(self):
        proc = VectorExponentialProcess(4, 100, 2, rng=0)
        proc.generate(100)
        with pytest.raises(RuntimeError):
            proc.generate(1)

    def test_generate_beyond_capacity(self):
        proc = VectorExponentialProcess(4, 100, 2, rng=0)
        with pytest.raises(RuntimeError):
            proc.generate(101)


class TestRankLawParity:
    @pytest.mark.parametrize("beta", [1.0, 0.5])
    def test_matches_reference_exponential(self, beta):
        n, m, removals, replicas = 16, 4000, 2000, 10
        vec = VectorExponentialProcess(n, m, replicas, beta=beta, rng=4)
        vec.generate(m)
        vres = vec.run_drain(removals)
        ref_ranks = np.empty((removals, replicas), dtype=np.int32)
        for r in range(replicas):
            ref = ExponentialProcess(n, m, beta=beta, rng=1000 + r)
            ref.generate(m)
            ref_ranks[:, r] = ref.run_drain(removals).ranks
        _, p = ks_2sample(_ks_sample(vres.ranks), _ks_sample(ref_ranks))
        assert p > 1e-3, f"exponential rank laws differ (p={p:.2e})"

    def test_theorem2_equivalence_with_labelled(self):
        # Thm 2: the exponential process's removal rank law equals the
        # labelled process's (drain phase, same n/beta).
        n, m, removals, replicas = 16, 4000, 2000, 10
        vec_exp = VectorExponentialProcess(n, m, replicas, beta=1.0, rng=5)
        vec_exp.generate(m)
        exp_res = vec_exp.run_drain(removals)
        vec_lab = VectorSequentialProcess(n, m, replicas, beta=1.0, rng=6)
        lab_res = vec_lab.run_prefill_drain(m, removals)
        _, p = ks_2sample(_ks_sample(exp_res.ranks), _ks_sample(lab_res.ranks))
        assert p > 1e-3, f"Theorem 2 equivalence violated (p={p:.2e})"


class TestTopProcess:
    def test_matches_reference_distribution(self):
        # Compare time-averaged Gamma/n of the batched top process
        # against the reference implementation across seeds.
        n, steps, replicas = 16, 2000, 12
        alpha = recommended_alpha(1.0)
        vec = VectorExponentialTopProcess(n, replicas, beta=1.0, rng=7)
        series = vec.run_potentials(steps, alpha, sample_every=50)
        vec_avg = series.gamma_over_n(n).mean(axis=0)

        ref_avgs = []
        for seed in range(replicas):
            ref = ExponentialTopProcess(n, beta=1.0, rng=200 + seed)
            gammas = []
            for t in range(1, steps + 1):
                ref.step()
                if t % 50 == 0:
                    w = ref.top_weights
                    y = w / n - w.mean() / n
                    gammas.append(np.exp(alpha * y).sum() + np.exp(-alpha * y).sum())
            ref_avgs.append(np.mean(gammas) / n)
        # Both hover just above the AM-GM floor of 2; means must agree
        # to well under a percent of that scale.
        assert abs(vec_avg.mean() - np.mean(ref_avgs)) < 0.05

    def test_step_advances_all_replicas(self):
        vec = VectorExponentialTopProcess(8, 4, beta=1.0, rng=1)
        before = vec.top_weights
        vec.run(10)
        after = vec.top_weights
        assert vec.steps == 10
        # Every replica advanced some bin.
        assert (after != before).any(axis=1).all()
