"""Backend sweep runners: shapes, rows, and the backend comparison."""

import numpy as np
import pytest

from repro.vector.sweep import (
    _ks_sample,
    compare_backends,
    run_reference_backend,
    run_vector_backend,
    sweep_cell_backend,
    sweep_cell_compare,
)


class TestBackendRuns:
    def test_reference_run_shapes_and_row(self):
        run = run_reference_backend(8, 1.0, 200, 300, 3, seed=0)
        assert run.ranks.shape == (300, 3)
        assert run.ops_per_sec > 0
        row = run.row()
        assert row["backend"] == "reference"
        assert row["replicas"] == 3
        assert row["mean_rank"] > 0
        assert row["mean_rank_sd"] >= 0

    def test_vector_run_shapes_and_row(self):
        run = run_vector_backend(8, 1.0, 200, 300, 5, seed=0)
        assert run.ranks.shape == (300, 5)
        row = run.row()
        assert row["backend"] == "vector"
        assert set(row) >= {"elapsed_s", "ops_per_sec", "p99_rank", "max_rank"}

    def test_single_replica_sd_is_zero(self):
        run = run_vector_backend(8, 1.0, 200, 300, 1, seed=0)
        assert run.row()["mean_rank_sd"] == 0.0


class TestKsSampling:
    def test_small_arrays_pass_through(self):
        ranks = np.arange(12).reshape(4, 3)
        np.testing.assert_array_equal(_ks_sample(ranks, cap=100), ranks.reshape(-1))

    def test_large_arrays_thinned_by_step(self):
        ranks = np.arange(10_000 * 4).reshape(10_000, 4)
        sample = _ks_sample(ranks, cap=200)
        assert len(sample) <= 200
        # Samples come from widely spaced steps, all replicas per step.
        rows_used = np.unique(np.asarray(sample) // 4)
        assert len(rows_used) >= 40

    def test_thinning_keeps_replica_balance(self):
        ranks = np.tile(np.array([[10, 20]]), (5000, 1))
        sample = _ks_sample(ranks, cap=100)
        assert (sample == 10).sum() == (sample == 20).sum()

    def test_sample_spans_the_full_step_range(self):
        # Regression: when stride rounding overshoots, the old [:cap]
        # truncation dropped the tail of the run — with 150 steps and a
        # cap of 100 it kept only steps 0..99.  Each row's value is its
        # step index, so coverage is directly observable.
        ranks = np.repeat(np.arange(150)[:, None], 1, axis=1)
        sample = _ks_sample(ranks, cap=100)
        assert len(sample) <= 100
        assert sample.min() == 0
        assert sample.max() == 149  # reaches the end of the run
        # Evenly spread, not front-loaded: the mean step sits mid-run.
        assert 60 < sample.mean() < 90

    def test_many_replicas_thinned_evenly_within_steps(self):
        # replicas > cap: a single step exceeds the budget; the sample
        # must still span it instead of truncating to early replicas.
        ranks = np.arange(3 * 500).reshape(3, 500)
        sample = _ks_sample(ranks, cap=100)
        assert len(sample) <= 100
        assert sample.max() >= 490


class TestSweepCells:
    def test_backend_cell_matches_direct_run(self):
        cell_row = sweep_cell_backend(
            1.0, 0, backend="vector", n=8, prefill=200, steps=300, replicas=4
        )
        direct = run_vector_backend(8, 1.0, 200, 300, 4, seed=0).row()
        for key in ("backend", "mean_rank", "p99_rank", "max_rank"):
            assert cell_row[key] == direct[key]

    def test_compare_cell_is_json_safe(self):
        import json

        result = sweep_cell_compare(
            1.0, 0, n=8, prefill=400, steps=500, replicas=4, ref_replicas=2
        )
        payload = json.loads(json.dumps(result))
        assert payload["vector"]["backend"] == "vector"
        assert isinstance(payload["parity_ok"], bool)

    def test_gamma_derives_bias_inside_the_cell(self):
        biased = sweep_cell_backend(
            1.0, 0, backend="reference", n=8, prefill=300, steps=400,
            replicas=2, gamma=0.3,
        )
        unbiased = sweep_cell_backend(
            1.0, 0, backend="reference", n=8, prefill=300, steps=400, replicas=2,
        )
        assert biased["mean_rank"] != unbiased["mean_rank"]


class TestCompareBackends:
    def test_small_comparison_is_consistent(self):
        result = compare_backends(16, 1.0, 800, 1000, 6, seed=0, ref_replicas=2)
        assert result["reference"]["replicas"] == 2
        assert result["vector"]["replicas"] == 6
        assert result["speedup"] > 0
        assert 0 <= result["ks_p_value"] <= 1
        assert result["parity_ok"], f"parity failed (p={result['ks_p_value']:.2e})"
        # Same process law: mean ranks in the same ballpark.
        assert result["reference"]["mean_rank"] == pytest.approx(
            result["vector"]["mean_rank"], rel=0.25
        )

    def test_ref_replicas_defaults_to_min(self):
        result = compare_backends(8, 1.0, 200, 200, 3, seed=1)
        assert result["reference"]["replicas"] == 3
