"""Unit tests for the Eraser-style lockset analyzer."""

from repro.sanitizer import EventLog, HBDetector, LocksetAnalyzer
from repro.sim.engine import Engine
from repro.sim.primitives import SimCell, SimLock
from repro.sim.syscalls import Acquire, Delay, Read, Release, Write


def _run(builder):
    eng = Engine()
    log = EventLog.attach(eng)
    builder(eng)
    eng.run()
    return log


class TestStateMachine:
    def test_thread_local_cell_never_warns(self):
        cell = SimCell(0)

        def owner():
            yield Write(cell, 1)
            yield Read(cell)
            yield Write(cell, 2)

        log = _run(lambda eng: eng.spawn(owner()))
        assert LocksetAnalyzer().process(log) == []

    def test_consistent_lock_never_warns(self):
        cell = SimCell(0)
        lock = SimLock(name="l")

        def writer(value):
            yield Acquire(lock)
            yield Write(cell, value)
            yield Release(lock)

        log = _run(lambda eng: (eng.spawn(writer(1)), eng.spawn(writer(2))))
        assert LocksetAnalyzer().process(log) == []

    def test_unlocked_shared_writes_warn(self):
        cell = SimCell(0, name="c")

        def writer(value):
            yield Delay(1)
            yield Write(cell, value)

        log = _run(lambda eng: (eng.spawn(writer(1)), eng.spawn(writer(2))))
        warnings = LocksetAnalyzer().process(log)
        assert len(warnings) == 1
        assert warnings[0].cell is cell
        assert len(warnings[0].tids) == 2

    def test_write_then_foreign_read_warns(self):
        """The refinement over classic Eraser: exclusive-with-writes ->
        foreign read goes straight to shared-modified, so pure
        write->read races are not lost."""
        cell = SimCell(0)

        def writer():
            yield Write(cell, 1)

        def reader():
            yield Delay(50)
            yield Read(cell)

        log = _run(lambda eng: (eng.spawn(writer()), eng.spawn(reader())))
        assert len(LocksetAnalyzer().process(log)) == 1

    def test_read_only_sharing_never_warns(self):
        cell = SimCell(7)

        def reader():
            yield Read(cell)

        log = _run(lambda eng: (eng.spawn(reader()), eng.spawn(reader())))
        assert LocksetAnalyzer().process(log) == []

    def test_candidate_set_drains_on_inconsistent_locks(self):
        cell = SimCell(0)
        lock_a = SimLock(name="a")
        lock_b = SimLock(name="b")

        def writer(lock, value, delay):
            yield Delay(delay)
            yield Acquire(lock)
            yield Write(cell, value)
            yield Release(lock)

        log = _run(
            lambda eng: (
                eng.spawn(writer(lock_a, 1, 0)),
                eng.spawn(writer(lock_b, 2, 500)),
            )
        )
        assert len(LocksetAnalyzer().process(log)) == 1


class TestSupersetOfHB:
    def test_interleaving_luck_does_not_hide_the_warning(self):
        """Two writes ordered only by a fork edge: no HB race this run,
        but the lockset discipline still complains — that asymmetry is
        the analyzer's value."""
        cell = SimCell(0)

        def build(eng):
            def parent():
                yield Write(cell, 1)

                def child():
                    yield Write(cell, 2)

                eng.spawn(child())

            eng.spawn(parent())

        log = _run(build)
        assert HBDetector().process(log) == []  # fork edge orders them
        assert len(LocksetAnalyzer().process(log)) == 1  # no common lock
