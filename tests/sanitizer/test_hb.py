"""Unit tests for the happens-before detector (synthetic engine runs)."""

from repro.sanitizer import EventLog, HBDetector
from repro.sim.engine import Engine
from repro.sim.primitives import SimBarrier, SimCell, SimLock
from repro.sim.syscalls import (
    Acquire,
    BarrierWait,
    Delay,
    GuardedWrite,
    Read,
    Release,
    TryAcquire,
    Write,
)


def _races(builder):
    """Run ``builder(engine, log)`` (spawns threads), return HB races."""
    eng = Engine()
    log = EventLog.attach(eng)
    builder(eng)
    eng.run()
    return HBDetector().process(log)


class TestRacyPatterns:
    def test_unlocked_write_write_is_a_race(self):
        cell = SimCell(0, name="c")

        def writer(value):
            yield Delay(1)
            yield Write(cell, value)

        def build(eng):
            eng.spawn(writer(1))
            eng.spawn(writer(2))

        races = _races(build)
        assert len(races) == 1
        assert races[0].kind == "write-write"
        assert races[0].cell is cell
        assert races[0].prior.tid != races[0].current.tid

    def test_unlocked_write_read_is_a_race(self):
        cell = SimCell(0, name="c")

        def writer():
            yield Write(cell, 1)

        def reader():
            yield Delay(50)
            yield Read(cell)

        races = _races(lambda eng: (eng.spawn(writer()), eng.spawn(reader())))
        assert [r.kind for r in races] == ["write-read"]

    def test_read_then_unordered_write_is_a_race(self):
        cell = SimCell(0, name="c")

        def reader():
            yield Read(cell)

        def writer():
            yield Delay(50)
            yield Write(cell, 1)

        races = _races(lambda eng: (eng.spawn(reader()), eng.spawn(writer())))
        assert [r.kind for r in races] == ["read-write"]

    def test_race_report_carries_both_sites_and_locks(self):
        cell = SimCell(0, name="c")
        lock = SimLock(name="l")

        def locked_writer():
            yield Acquire(lock)
            yield Write(cell, 1)
            yield Release(lock)

        def bare_writer():
            yield Delay(200)
            yield Write(cell, 2)

        races = _races(lambda eng: (eng.spawn(locked_writer()), eng.spawn(bare_writer())))
        assert len(races) == 1
        race = races[0]
        assert lock in race.prior.locks  # the locked side held it
        assert race.current.locks == frozenset()  # the bare side held nothing
        assert "test_hb.py" in race.prior.site and "test_hb.py" in race.current.site


class TestOrderingEdges:
    def test_common_lock_orders_accesses(self):
        cell = SimCell(0, name="c")
        lock = SimLock(name="l")

        def writer(value):
            yield Acquire(lock)
            yield Write(cell, value)
            yield Release(lock)

        races = _races(lambda eng: (eng.spawn(writer(1)), eng.spawn(writer(2))))
        assert races == []

    def test_try_lock_orders_accesses(self):
        cell = SimCell(0, name="c")
        lock = SimLock(name="l")

        def writer(value):
            while True:
                ok = yield TryAcquire(lock)
                if ok:
                    break
                yield Delay(10)
            yield Write(cell, value)
            yield Release(lock)

        races = _races(lambda eng: (eng.spawn(writer(1)), eng.spawn(writer(2))))
        assert races == []

    def test_fork_edge_orders_parent_prefix(self):
        cell = SimCell(0, name="c")

        def build(eng):
            def parent():
                yield Write(cell, 1)

                def child():
                    yield Write(cell, 2)

                eng.spawn(child())

            eng.spawn(parent())

        assert _races(build) == []

    def test_barrier_orders_across_phases(self):
        cell = SimCell(0, name="c")
        barrier = SimBarrier(2)

        def first():
            yield Write(cell, 1)
            yield BarrierWait(barrier)

        def second():
            yield BarrierWait(barrier)
            yield Write(cell, 2)

        races = _races(lambda eng: (eng.spawn(first()), eng.spawn(second())))
        assert races == []

    def test_revocation_is_a_release_edge(self):
        """The stale holder's pre-revocation write happens-before the
        thief's post-acquire accesses — revocation must not produce a
        false race (nor hide one: the stale holder's *failed* guarded
        write after revocation touches nothing)."""
        cell = SimCell(0, name="c")
        lock = SimLock(name="l", lease=100.0)

        def stale():
            yield Acquire(lock)
            yield GuardedWrite(cell, 1, lock)  # held: lands
            yield Delay(10_000)
            yield GuardedWrite(cell, 99, lock)  # revoked: fails, no access
            yield Release(lock)

        def thief():
            yield Delay(500)
            ok = yield TryAcquire(lock)
            assert ok
            yield Read(cell)
            yield GuardedWrite(cell, 2, lock)
            yield Release(lock)

        races = _races(lambda eng: (eng.spawn(stale()), eng.spawn(thief())))
        assert races == []
        assert cell.value == 2  # the failed guarded write never landed

    def test_failed_guarded_write_is_not_an_access(self):
        cell = SimCell(0, name="c")
        lock = SimLock(name="l", lease=100.0)

        def stale():
            yield Acquire(lock)
            yield Delay(10_000)
            yield GuardedWrite(cell, 99, lock)  # revoked by then
            yield Release(lock)

        def thief():
            yield Delay(500)
            ok = yield TryAcquire(lock)
            assert ok
            yield Release(lock)
            # unlocked write AFTER the stale holder's failed guarded
            # write: must not race, because the failed write is no access
            yield Write(cell, 3)

        races = _races(lambda eng: (eng.spawn(stale()), eng.spawn(thief())))
        assert races == []
