"""Tests for the static syscall-discipline lint (``repro lint``)."""

import textwrap

import pytest

from repro.sanitizer.lint import RULES, default_paths, lint_paths

HEADER = """\
from repro.sanitizer.annotations import atomic_cell, guarded_by, shared_state
from repro.sim.syscalls import Acquire, GuardedWrite, Read, Release, TryAcquire, Write
"""


def _lint_source(tmp_path, body):
    path = tmp_path / "probe.py"
    path.write_text(HEADER + textwrap.dedent(body))
    return lint_paths([path])


def _rules(report):
    return [v.rule for v in report.violations]


class TestRepoIsClean:
    def test_concurrent_package_lints_clean(self):
        report = lint_paths()
        assert report.ok, report.describe()
        assert report.classes_checked >= 4  # all four annotated structures

    def test_suppressions_are_counted_not_silent(self):
        """Exactly the two prefill sites are suppressed, both SAN104,
        both with a reason."""
        report = lint_paths()
        assert len(report.suppressed) == 2
        assert all(s.rule == "SAN104" for s in report.suppressed)
        assert all(s.reason for s in report.suppressed)
        text = report.describe()
        assert "2 suppression(s)" in text

    def test_default_paths_cover_the_concurrent_package(self):
        names = {p.name for p in default_paths()}
        assert {"multiqueue.py", "spraylist.py", "klsm.py", "linden_jonsson.py"} <= names


class TestRulesFire:
    def test_san101_unguarded_write(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            @shared_state(cells={"_cells": guarded_by("_locks")})
            class P:
                def f(self):
                    yield Write(self._cells[0], 1)
            """,
        )
        assert _rules(report) == ["SAN101"]

    def test_san101_wrong_guard_named(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            @shared_state(cells={"_cells": guarded_by("_locks")})
            class P:
                def f(self):
                    yield Acquire(self._other[0])
                    yield GuardedWrite(self._cells[0], 1, self._other[0])
                    yield Release(self._other[0])
            """,
        )
        assert _rules(report) == ["SAN101"]

    def test_san102_plain_write_to_lease_guarded_cell(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            @shared_state(cells={"_tops": guarded_by("_locks", lease_guarded=True)})
            class P:
                def f(self):
                    yield Acquire(self._locks[0])
                    yield Write(self._tops[0], 1)
                    yield Release(self._locks[0])
            """,
        )
        assert _rules(report) == ["SAN102"]

    def test_san103_unordered_blocking_acquires(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            class P:
                def f(self, i, j):
                    yield Acquire(self._locks[i])
                    yield Acquire(self._locks[j])
            """,
        )
        assert _rules(report) == ["SAN103"]

    def test_san103_loop_without_sorted_evidence(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            class P:
                def f(self, queues):
                    for q in queues:
                        yield Acquire(self._locks[q])
            """,
        )
        assert _rules(report) == ["SAN103"]

    def test_san104_raw_mutation(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            @shared_state(cells={"_tops": guarded_by("_locks")})
            class P:
                def f(self):
                    self._tops[0].value = 1
            """,
        )
        assert _rules(report) == ["SAN104"]
        assert "SAN104" in RULES


class TestDisciplineAccepted:
    def test_try_lock_idiom_is_clean(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            @shared_state(cells={"_tops": guarded_by("_locks", lease_guarded=True)})
            class P:
                def f(self, q):
                    while True:
                        ok = yield TryAcquire(self._locks[q])
                        if ok:
                            break
                    yield GuardedWrite(self._tops[q], 1, self._locks[q])
                    yield Release(self._locks[q])
            """,
        )
        assert report.ok, report.describe()

    def test_sorted_loop_acquire_is_clean(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            class P:
                def f(self, queues):
                    indices = sorted(set(queues))
                    for q in indices:
                        yield Acquire(self._locks[q])
                    for q in reversed(indices):
                        yield Release(self._locks[q])
            """,
        )
        assert report.ok, report.describe()

    def test_min_max_ordering_evidence_is_accepted(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            class P:
                def f(self, i, j):
                    first, second = min(i, j), max(i, j)
                    yield Acquire(self._locks[first])
                    yield Acquire(self._locks[second])
                    yield Release(self._locks[second])
                    yield Release(self._locks[first])
            """,
        )
        assert report.ok, report.describe()

    def test_atomic_cells_are_exempt(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            @shared_state(cells={"_regions": atomic_cell()})
            class P:
                def f(self):
                    yield Write(self._regions[0], 1)
            """,
        )
        assert report.ok, report.describe()


class TestSuppression:
    def test_suppression_on_the_line_above(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            @shared_state(cells={"_tops": guarded_by("_locks")})
            class P:
                def f(self):
                    # sanitizer: allow(SAN104) probe fixture
                    self._tops[0].value = 1
            """,
        )
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "SAN104"
        assert report.suppressed[0].reason == "probe fixture"

    def test_suppression_for_the_wrong_rule_does_not_apply(self, tmp_path):
        report = _lint_source(
            tmp_path,
            """
            @shared_state(cells={"_tops": guarded_by("_locks")})
            class P:
                def f(self):
                    # sanitizer: allow(SAN101) wrong rule
                    self._tops[0].value = 1
            """,
        )
        assert _rules(report) == ["SAN104"]
        assert report.suppressed == []
