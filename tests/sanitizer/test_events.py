"""Engine event-stream tests: completeness of the lock history.

Satellite of the sanitizer PR: every lock grant must be paired with
exactly one ``release`` or ``revoke`` event — including the paths that
used to be silent (``Engine.kill(release_locks=True)``, lease
revocation of a crashed holder) — so detectors can replay who held
what, when, without gaps.
"""

import pytest

from repro.sanitizer import EventLog
from repro.sim.engine import Engine
from repro.sim.primitives import SimCell, SimLock
from repro.sim.syscalls import Acquire, Delay, Read, Release, TryAcquire, Write


def _grant_balance(log):
    """acquires minus (releases + revokes), per lock object."""
    balance = {}
    for ev in log:
        if ev.kind == "acquire":
            balance[id(ev.obj)] = balance.get(id(ev.obj), 0) + 1
        elif ev.kind in ("release", "revoke"):
            balance[id(ev.obj)] = balance.get(id(ev.obj), 0) - 1
    return balance


class TestAccessEvents:
    def test_reads_writes_and_sites_are_recorded(self):
        eng = Engine()
        log = EventLog.attach(eng)
        cell = SimCell(0, name="c")

        def body():
            yield Write(cell, 7)
            value = yield Read(cell)
            return value

        eng.spawn(body())
        eng.run()
        kinds = [ev.kind for ev in log]
        assert kinds == ["fork", "write", "read", "finish"]
        write = log.events[1]
        assert write.is_write and write.obj is cell
        assert write.site is not None and "test_events.py" in write.site

    def test_fork_carries_parent_and_finish_crash_flag(self):
        eng = Engine()
        log = EventLog.attach(eng)

        def child():
            yield Delay(10)

        def parent():
            eng.spawn(child(), name="child")
            yield Delay(5)

        eng.spawn(parent(), name="parent")
        eng.run()
        forks = [ev for ev in log if ev.kind == "fork"]
        assert forks[0].info["parent"] is None  # spawned from outside
        assert forks[1].info["parent"] == forks[0].tid
        finishes = [ev for ev in log if ev.kind == "finish"]
        assert all(ev.info["crashed"] is False for ev in finishes)


class TestLockHistoryCompleteness:
    def test_normal_acquire_release_balances(self):
        eng = Engine()
        log = EventLog.attach(eng)
        lock = SimLock(name="l")

        def body():
            yield Acquire(lock)
            yield Delay(10)
            yield Release(lock)

        eng.spawn(body())
        eng.run()
        assert _grant_balance(log) == {id(lock): 0}

    def test_kill_with_release_locks_emits_release_events(self):
        """The satellite fix: a graceful crash releases its locks
        *visibly* — detector and auditor see a consistent history."""
        eng = Engine()
        log = EventLog.attach(eng)
        lock = SimLock(name="l")

        def holder():
            yield Acquire(lock)
            yield Delay(1_000_000)

        tid = eng.spawn(holder())
        eng.run(until=100)
        eng.kill(tid, release_locks=True)
        assert _grant_balance(log) == {id(lock): 0}
        assert [ev.kind for ev in log if ev.kind in ("release", "revoke")] == ["release"]
        # the engine's own bookkeeping agrees (InvariantAuditor's source)
        assert eng.locks_held_by(tid) == []
        assert lock.held_by is None
        finish = [ev for ev in log if ev.kind == "finish"][-1]
        assert finish.info["crashed"] is True

    def test_kill_release_hands_lock_to_waiter(self):
        eng = Engine()
        log = EventLog.attach(eng)
        lock = SimLock(name="l")
        got = []

        def holder():
            yield Acquire(lock)
            yield Delay(1_000_000)

        def waiter():
            yield Acquire(lock)
            got.append(True)
            yield Release(lock)

        tid = eng.spawn(holder())
        eng.spawn(waiter())
        eng.run(until=100)
        eng.kill(tid, release_locks=True)
        eng.run()
        assert got == [True]
        assert _grant_balance(log) == {id(lock): 0}

    def test_lease_revocation_emits_revoke_for_stale_holder(self):
        eng = Engine()
        log = EventLog.attach(eng)
        lock = SimLock(name="l", lease=100.0)

        def stale():
            yield Acquire(lock)
            yield Delay(10_000)  # outlive the lease
            ok = yield Release(lock)
            return ok

        def thief():
            yield Delay(500)
            ok = yield TryAcquire(lock)
            assert ok
            yield Release(lock)

        stale_tid = eng.spawn(stale())
        eng.spawn(thief())
        eng.run()
        assert eng.stats[stale_tid].result is False  # observed the loss
        revokes = [ev for ev in log if ev.kind == "revoke"]
        assert len(revokes) == 1 and revokes[0].tid == stale_tid
        assert any(ev.kind == "release_lost" for ev in log)
        assert _grant_balance(log) == {id(lock): 0}

    def test_dead_holder_revocation_still_pairs_the_grant(self):
        """Crash without release -> dead-held; a lease later revokes it.
        The grant history stays complete: acquire .. revoke."""
        eng = Engine()
        log = EventLog.attach(eng)
        lock = SimLock(name="l", lease=100.0)

        def holder():
            yield Acquire(lock)
            yield Delay(1_000_000)

        def thief():
            yield Delay(500)
            ok = yield TryAcquire(lock)
            assert ok
            yield Release(lock)

        tid = eng.spawn(holder())
        eng.spawn(thief())
        eng.run(until=50)
        eng.kill(tid, release_locks=False)  # dead-held
        eng.run()
        assert _grant_balance(log) == {id(lock): 0}
        revokes = [ev for ev in log if ev.kind == "revoke"]
        assert len(revokes) == 1 and revokes[0].tid == tid
        assert revokes[0].site is None  # the thread is already gone

    def test_monitor_off_has_zero_bookkeeping(self):
        """No monitor attached -> behavior identical, nothing recorded."""
        eng = Engine()
        lock = SimLock(name="l")
        cell = SimCell(0)

        def body():
            yield Acquire(lock)
            yield Write(cell, 1)
            yield Release(lock)

        eng.spawn(body())
        eng.run()
        assert eng.monitor is None and cell.value == 1
