"""End-to-end sanitizer tests over the real MultiQueue scenarios.

Satellite 3 of the sanitizer PR: a seeded known-race fixture the
happens-before detector must flag, a negative sweep that must stay
race-free, and the superset property tying the two analyses together.
"""

import numpy as np
import pytest

from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.sanitizer import Sanitizer
from repro.sanitizer.scenarios import NoLockMultiQueue, run_sanitized, run_sweep
from repro.sim.engine import Engine
from repro.sim.syscalls import Delay, Write

SMALL = dict(n_threads=3, ops_per_thread=40, n_queues=4, prefill=200)


def _prefill(model, n, seed=0):
    model.prefill(np.random.default_rng(seed).integers(2**40, size=n))


class TestKnownRaceFixture:
    def test_two_unlocked_top_writers_are_flagged(self):
        """The canonical seeded race: two threads write the same top
        cell without taking its lock — happens-before must flag it."""
        eng = Engine()
        sanitizer = Sanitizer.attach(eng)
        model = ConcurrentMultiQueue(eng, n_queues=2, rng=42)
        _prefill(model, 50)
        cell = model._tops[0]

        def bare_writer(value):
            yield Delay(value)
            yield Write(cell, value)

        eng.spawn(bare_writer(1), name="racer-a")
        eng.spawn(bare_writer(2), name="racer-b")
        eng.run()
        report = sanitizer.report(model, seed=42)
        assert not report.ok
        races = report.unsuppressed_races
        assert any(r.race.cell is cell and r.race.kind == "write-write" for r in races)
        with pytest.raises(AssertionError):
            report.raise_if_failed()

    def test_broken_nolock_variant_is_flagged(self):
        report = run_sanitized(variant="broken-nolock", seed=3, **SMALL)
        assert not report.ok
        assert report.unsuppressed_races
        assert report.discipline  # unguarded writes to a guarded cell
        # the exposing seed is carried in the report
        assert report.seed == 3

    def test_report_names_the_cell_and_both_sites(self):
        report = run_sanitized(variant="broken-nolock", seed=3, **SMALL)
        finding = report.unsuppressed_races[0]
        text = finding.describe()
        assert "NoLockMultiQueue._tops[" in text
        assert "scenarios.py" in text or "multiqueue.py" in text


class TestNegativeSweep:
    @pytest.mark.parametrize("variant", ["lock-better", "lock-both"])
    def test_workload_is_race_free_across_seeds(self, variant):
        reports = run_sweep(scenario="workload", variant=variant, seeds=10, **SMALL)
        assert len(reports) == 10
        for report in reports:
            assert report.ok, report.describe()

    def test_chaos_with_revocation_is_race_free(self):
        """Faults + lease revocation must not manufacture false races."""
        for report in run_sweep(scenario="chaos", variant="lock-better", seeds=5, **SMALL):
            assert report.ok, report.describe()
            assert report.n_events > 0


class TestSupersetProperty:
    @pytest.mark.parametrize("variant", ["lock-better", "broken-nolock"])
    def test_lockset_warnings_cover_hb_races(self, variant):
        """Every cell with a confirmed HB race must also carry a lockset
        warning: lockset is the conservative over-approximation."""
        for seed in (1, 2, 3):
            report = run_sanitized(variant=variant, seed=seed, **SMALL)
            hb_cells = {id(f.race.cell) for f in report.races}
            lockset_cells = {id(f.warning.cell) for f in report.lockset}
            assert hb_cells <= lockset_cells, (
                f"seed {seed}: HB race cells not covered by lockset warnings"
            )


class TestFixture:
    def test_sanitized_fixture_passes_clean_runs(self, sanitized):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, n_queues=4, rng=7)
        _prefill(model, 100)
        sanitized(eng, model, seed=7)

        def worker(k):
            for _ in range(20):
                yield from model.delete_min_op(f"w{k}")

        for k in range(3):
            eng.spawn(worker(k), name=f"w{k}")
        eng.run()
        # teardown runs the report; race-free is asserted there

    def test_sanitized_fixture_catches_the_broken_variant(self):
        """Drive the fixture protocol by hand so the failure is
        observable inside the test rather than at teardown."""
        eng = Engine()
        sanitizer = Sanitizer.attach(eng)
        model = NoLockMultiQueue(eng, n_queues=4, rng=7)
        _prefill(model, 100)

        def worker(k):
            for i in range(30):
                yield from model.insert_op(f"w{k}", k * 100 + i)

        for k in range(3):
            eng.spawn(worker(k), name=f"w{k}")
        eng.run()
        with pytest.raises(AssertionError, match="sanitizer"):
            sanitizer.report(model, seed=7).raise_if_failed()
