"""Shared test configuration."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)
