"""Shared test configuration."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def sanitized():
    """Race-detect engines under test: ``sanitized(engine, *models)``.

    Call it right after building the engine and models; at teardown the
    fixture replays every registered engine's event stream through the
    happens-before detector and fails the test on any unsuppressed race
    or discipline violation (see ``repro.sanitizer``).
    """
    from repro.sanitizer import Sanitizer

    registered = []

    def attach(engine, *models, seed=None):
        sanitizer = Sanitizer.attach(engine)
        registered.append((sanitizer, models, seed))
        return sanitizer

    yield attach
    for sanitizer, models, seed in registered:
        sanitizer.report(*models, seed=seed).raise_if_failed()
