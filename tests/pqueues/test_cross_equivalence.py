"""Property tests: every implementation behaves identically.

The stable-FIFO contract makes all queues observationally equivalent, so
hypothesis drives random op sequences against the trivially-correct
SortedListPQ oracle and demands byte-identical behaviour from the rest.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pqueues import (
    BinaryHeap,
    BucketQueue,
    DaryHeap,
    PairingHeap,
    QueueEmptyError,
    SkipListPQ,
    SortedListPQ,
)

CANDIDATES = {
    "binary": BinaryHeap,
    "dary3": lambda: DaryHeap(3),
    "dary4": lambda: DaryHeap(4),
    "pairing": PairingHeap,
    "skiplist": lambda: SkipListPQ(rng=0),
}

# Op encoding: (True, priority, payload) = push; (False, _, _) = pop.
ops_strategy = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=120,
)


@pytest.mark.parametrize("name", sorted(CANDIDATES))
@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_matches_sorted_list_oracle(name, ops):
    candidate = CANDIDATES[name]()
    oracle = SortedListPQ()
    for is_push, priority, payload in ops:
        if is_push:
            candidate.push(priority, (priority, payload))
            oracle.push(priority, (priority, payload))
        else:
            if len(oracle) == 0:
                with pytest.raises(QueueEmptyError):
                    candidate.pop()
                continue
            assert candidate.pop() == oracle.pop()
        assert len(candidate) == len(oracle)
        if len(oracle):
            assert candidate.peek() == oracle.peek()
    # Drain remainders in lockstep.
    while len(oracle):
        assert candidate.pop() == oracle.pop()


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=500)),
        max_size=100,
    )
)
def test_bucket_queue_matches_oracle_non_monotone(ops):
    """BucketQueue (non-monotone mode) against the oracle, ints only."""
    candidate = BucketQueue(monotone=False)
    oracle = SortedListPQ()
    for is_push, priority in ops:
        if is_push:
            candidate.push(priority)
            oracle.push(priority)
        elif len(oracle):
            assert candidate.pop() == oracle.pop()
    while len(oracle):
        assert candidate.pop() == oracle.pop()


@settings(max_examples=40, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.integers(min_value=-100, max_value=100), max_size=20), max_size=6
    )
)
def test_pairing_heap_meld_equals_combined_pushes(batches):
    """Melding heaps yields the same drain order as pushing everything
    into one heap (priorities only; payload order among ties may differ
    across meld boundaries, so payloads use the priority itself)."""
    melded = PairingHeap()
    combined = []
    for batch in batches:
        part = PairingHeap()
        for v in batch:
            part.push(v)
            combined.append(v)
        melded.meld(part)
    assert [e.priority for e in melded.drain()] == sorted(combined)
