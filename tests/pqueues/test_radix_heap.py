"""Tests for the monotone radix heap."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pqueues import BucketQueue, RadixHeap


class TestBasics:
    def test_type_validation(self):
        rh = RadixHeap()
        with pytest.raises(TypeError):
            rh.push(1.5)
        with pytest.raises(TypeError):
            rh.push(True)
        with pytest.raises(ValueError):
            rh.push(-1)

    def test_monotone_violation(self):
        rh = RadixHeap()
        rh.push(10)
        assert rh.pop().priority == 10
        with pytest.raises(ValueError):
            rh.push(5)

    def test_last_popped(self):
        rh = RadixHeap()
        rh.push(7)
        rh.pop()
        assert rh.last_popped == 7

    def test_equal_priority_fifo(self):
        rh = RadixHeap()
        for tag in ("a", "b", "c"):
            rh.push(5, tag)
        assert [e.item for e in rh.drain()] == ["a", "b", "c"]

    def test_fifo_across_bucket_generations(self):
        """Equal priorities pushed before and after `last` advances must
        still pop in push order (the stability-under-redistribution
        invariant)."""
        rh = RadixHeap()
        rh.push(4, "pre")
        rh.push(5, "first")
        assert rh.pop().item == "pre"  # last -> 4, redistributes bucket
        rh.push(5, "second")  # same priority, new bucket geometry
        assert rh.pop().item == "first"
        assert rh.pop().item == "second"

    def test_large_priorities(self):
        rh = RadixHeap()
        values = [2**40, 2**40 + 1, 2**20, 0]
        for v in values:
            rh.push(v)
        assert [e.priority for e in rh.drain()] == sorted(values)

    def test_peek_stable(self):
        rh = RadixHeap()
        rh.push(3, "x")
        assert rh.peek().item == "x"
        assert len(rh) == 1


class TestAgainstBucketQueue:
    def test_random_monotone_workload(self):
        """Radix heap and bucket queue must agree on any monotone trace."""
        rnd = random.Random(77)
        rh, bq = RadixHeap(), BucketQueue()
        floor = 0
        for _ in range(2000):
            if rnd.random() < 0.6 or len(bq) == 0:
                p = floor + rnd.randrange(100)
                tag = rnd.randrange(5)
                rh.push(p, (p, tag))
                bq.push(p, (p, tag))
            else:
                a, b = rh.pop(), bq.pop()
                assert a == b
                floor = a.priority
        while len(bq):
            assert rh.pop() == bq.pop()


@settings(max_examples=60, deadline=None)
@given(
    deltas=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=200)),
        max_size=120,
    )
)
def test_matches_bucket_queue_property(deltas):
    """Property: arbitrary monotone push/pop traces match BucketQueue."""
    rh, bq = RadixHeap(), BucketQueue()
    floor = 0
    seq = 0
    for is_push, delta in deltas:
        if is_push or len(bq) == 0:
            p = floor + delta
            rh.push(p, seq)
            bq.push(p, seq)
            seq += 1
        else:
            a, b = rh.pop(), bq.pop()
            assert a == b
            floor = a.priority
    while len(bq):
        assert rh.pop() == bq.pop()
