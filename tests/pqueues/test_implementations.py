"""Per-implementation unit tests, parameterized across every queue."""

import pytest

from repro.pqueues import (
    QUEUE_FACTORIES,
    BinaryHeap,
    BucketQueue,
    DaryHeap,
    Entry,
    PairingHeap,
    QueueEmptyError,
    SkipListPQ,
    SortedListPQ,
)

ALL_FACTORIES = list(QUEUE_FACTORIES.values())


@pytest.fixture(params=ALL_FACTORIES, ids=list(QUEUE_FACTORIES.keys()))
def queue(request):
    return request.param()


class TestCommonBehaviour:
    def test_empty_pop_raises(self, queue):
        with pytest.raises(QueueEmptyError):
            queue.pop()

    def test_empty_peek_raises(self, queue):
        with pytest.raises(QueueEmptyError):
            queue.peek()

    def test_len_and_bool(self, queue):
        assert len(queue) == 0
        assert not queue
        queue.push(1)
        assert len(queue) == 1
        assert queue

    def test_push_pop_single(self, queue):
        queue.push(5, "payload")
        entry = queue.pop()
        assert entry == Entry(5, "payload")
        assert len(queue) == 0

    def test_item_defaults_to_priority(self, queue):
        queue.push(7)
        assert queue.pop() == Entry(7, 7)

    def test_peek_does_not_remove(self, queue):
        queue.push(3)
        assert queue.peek().priority == 3
        assert len(queue) == 1

    def test_sorted_output(self, queue):
        values = [5, 3, 8, 1, 9, 2, 7, 4, 6, 0]
        for v in values:
            queue.push(v)
        assert [e.priority for e in queue.drain()] == sorted(values)

    def test_fifo_among_equal_priorities(self, queue):
        for tag in ("first", "second", "third"):
            queue.push(1, tag)
        assert [e.item for e in queue.drain()] == ["first", "second", "third"]

    def test_interleaved_push_pop(self, queue):
        queue.push(5)
        queue.push(2)
        assert queue.pop().priority == 2
        queue.push(7)
        queue.push(6)
        assert queue.pop().priority == 5
        assert queue.pop().priority == 6
        assert queue.pop().priority == 7

    def test_top_or_none(self, queue):
        assert queue.top_or_none() is None
        queue.push(4)
        assert queue.top_or_none().priority == 4

    def test_peek_priority(self, queue):
        queue.push(9)
        assert queue.peek_priority() == 9

    def test_is_empty(self, queue):
        assert queue.is_empty()
        queue.push(1)
        assert not queue.is_empty()

    def test_repr_nonempty(self, queue):
        queue.push(2)
        assert "len=1" in repr(queue)

    def test_large_sequence(self, queue):
        import random

        rnd = random.Random(99)
        values = [rnd.randrange(1000) for _ in range(500)]
        for v in values:
            queue.push(v)
        assert [e.priority for e in queue.drain()] == sorted(values)


class TestDaryHeap:
    def test_arity_validation(self):
        with pytest.raises(ValueError):
            DaryHeap(1)

    @pytest.mark.parametrize("d", [2, 3, 4, 8])
    def test_various_arities_sort(self, d):
        heap = DaryHeap(d)
        values = list(range(50, 0, -1))
        for v in values:
            heap.push(v)
        assert [e.priority for e in heap.drain()] == sorted(values)
        assert DaryHeap(d).arity == d


class TestPairingHeapMeld:
    def test_meld_combines_contents(self):
        a, b = PairingHeap(), PairingHeap()
        for v in (5, 1, 3):
            a.push(v)
        for v in (4, 2, 6):
            b.push(v)
        a.meld(b)
        assert len(a) == 6
        assert len(b) == 0
        assert [e.priority for e in a.drain()] == [1, 2, 3, 4, 5, 6]

    def test_meld_with_empty(self):
        a, b = PairingHeap(), PairingHeap()
        a.push(1)
        a.meld(b)
        assert len(a) == 1

    def test_meld_into_empty(self):
        a, b = PairingHeap(), PairingHeap()
        b.push(2)
        a.meld(b)
        assert a.pop().priority == 2

    def test_meld_self_rejected(self):
        a = PairingHeap()
        with pytest.raises(ValueError):
            a.meld(a)

    def test_emptied_heap_reusable_after_meld(self):
        a, b = PairingHeap(), PairingHeap()
        b.push(3)
        a.meld(b)
        b.push(1)
        assert b.pop().priority == 1


class TestBucketQueue:
    def test_requires_int_priorities(self):
        bq = BucketQueue()
        with pytest.raises(TypeError):
            bq.push(1.5)
        with pytest.raises(TypeError):
            bq.push(True)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BucketQueue().push(-1)

    def test_monotone_violation_raises(self):
        bq = BucketQueue(monotone=True)
        bq.push(5)
        bq.pop()
        bq.push(7)
        bq.pop()  # cursor now at 7
        bq.push(9)
        with pytest.raises(ValueError):
            bq.push(3)

    def test_non_monotone_mode_rewinds(self):
        bq = BucketQueue(monotone=False)
        bq.push(5)
        assert bq.pop().priority == 5
        bq.push(9)
        bq.push(3)
        assert bq.pop().priority == 3
        assert bq.pop().priority == 9

    def test_refill_after_empty(self):
        bq = BucketQueue()
        bq.push(4)
        bq.pop()
        bq.push(10)
        assert bq.pop().priority == 10


class TestSkipListSpecifics:
    def test_ordered_iteration(self):
        sl = SkipListPQ(rng=5)
        for v in (4, 1, 3, 2):
            sl.push(v)
        assert [e.priority for e in sl] == [1, 2, 3, 4]
        assert len(sl) == 4  # iteration does not consume

    def test_deterministic_with_seed(self):
        a, b = SkipListPQ(rng=8), SkipListPQ(rng=8)
        for v in range(100):
            a.push((v * 37) % 100)
            b.push((v * 37) % 100)
        assert [e.priority for e in a.drain()] == [e.priority for e in b.drain()]
