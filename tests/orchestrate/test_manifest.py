"""Run manifests: field inference, archiving, the audit round trip."""

import json

from repro.orchestrate import ResultCache, RunManifest, expand_grid, git_sha, run_cells

from tests.orchestrate.cellfns import affine_cell


class TestManifestContents:
    def test_grid_and_fixed_inferred(self):
        run = run_cells(affine_cell, expand_grid("x", [1, 2], [0, 1]))
        m = run.manifest
        assert m.grid == {"x": [1, 2]}
        assert m.seeds == [0, 1]
        assert m.n_cells == 4
        assert m.workers == 0
        assert m.cache_dir is None
        assert m.fn.endswith("cellfns.affine_cell")

    def test_fixed_params_separated_from_grid(self):
        run = run_cells(affine_cell, expand_grid("x", [1, 2], [0]))
        assert "x" in run.manifest.grid
        cells = expand_grid("x", [5], [0])  # nothing varies
        assert run_cells(affine_cell, cells).manifest.fixed == {"x": 5}

    def test_per_cell_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = run_cells(affine_cell, expand_grid("x", [1], [0, 1]), cache=cache)
        records = run.manifest.cells
        assert len(records) == 2
        assert all(set(r) == {"params", "seed", "key", "cached", "wall_s", "attempts"}
                   for r in records)
        assert all(r["cached"] is False and r["wall_s"] >= 0 for r in records)
        assert all(r["attempts"] == 1 for r in records)
        assert all(len(r["key"]) == 64 for r in records)

    def test_git_sha_recorded_in_checkout(self):
        run = run_cells(affine_cell, expand_grid("x", [1], [0]))
        # This repo's tests always run from a checkout.
        assert run.manifest.git_sha == git_sha()
        assert run.manifest.git_sha and len(run.manifest.git_sha) == 40

    def test_describe_mentions_cache_only_when_caching(self, tmp_path):
        plain = run_cells(affine_cell, expand_grid("x", [1], [0]))
        assert "cache" not in plain.manifest.describe()
        cached = run_cells(
            affine_cell, expand_grid("x", [1], [0]), cache=ResultCache(tmp_path)
        )
        assert "cache 0/1 hits" in cached.manifest.describe()


class TestManifestIO:
    def test_write_read_roundtrip(self, tmp_path):
        run = run_cells(affine_cell, expand_grid("x", [1, 2], [0]))
        path = run.manifest.write(tmp_path / "run.manifest.json")
        data = json.loads(path.read_text())
        assert data["n_cells"] == 2
        assert data["hit_ratio"] == 0.0
        assert "started_at" in data and "python" in data
        back = RunManifest.read(path)
        assert back.grid == {"x": [1, 2]}
        assert back.cache_misses == 2

    def test_hit_ratio(self):
        m = RunManifest(fn="f", n_cells=4, cache_hits=3)
        assert m.hit_ratio == 0.75
        assert RunManifest(fn="f").hit_ratio == 0.0


class TestManifestMerge:
    def shard(self, worker_id, cells, **overrides):
        kwargs = dict(
            fn="tests.orchestrate.cellfns.affine_cell",
            grid={"x": [1, 2]},
            seeds=[0, 1],
            n_cells=4,
            workers=1,
            cells=cells,
            cache_hits=0,
            cache_misses=len(cells),
            elapsed_s=1.0,
            started_at="2026-08-07T00:00:00+00:00",
            extra={"worker_id": worker_id, "host": "h", "pid": 1,
                   "cells_claimed": len(cells)},
        )
        kwargs.update(overrides)
        return RunManifest(**kwargs)

    def row(self, x, seed, key, attempts=1):
        return {"params": {"x": x}, "seed": seed, "key": key,
                "cached": False, "wall_s": 0.1, "attempts": attempts}

    def test_merge_restores_grid_order_and_sums_counters(self):
        a = self.shard("a", [self.row(1, 0, "k0"), self.row(2, 1, "k3")],
                       takeovers=1, elapsed_s=2.0)
        b = self.shard("b", [self.row(1, 1, "k1"), self.row(2, 0, "k2")],
                       zombie_writes_fenced=1, retries=2)
        merged = RunManifest.merge([a, b], cell_order=["k0", "k1", "k2", "k3"])
        assert [r["key"] for r in merged.cells] == ["k0", "k1", "k2", "k3"]
        assert merged.workers == 2
        assert merged.takeovers == 1
        assert merged.zombie_writes_fenced == 1
        assert merged.retries == 2
        assert merged.elapsed_s == 2.0  # makespan, not sum
        assert merged.n_cells == 4
        assert merged.extra["merged_from"] == 2

    def test_merge_carries_per_worker_provenance(self):
        a = self.shard("a", [self.row(1, 0, "k0")], takeovers=1)
        b = self.shard("b", [self.row(1, 1, "k1")])
        merged = RunManifest.merge([a, b])
        prov = {p["worker_id"]: p for p in merged.extra["workers"]}
        assert prov["a"]["takeovers"] == 1
        assert prov["b"]["takeovers"] == 0
        assert prov["a"]["cells_committed"] == 1

    def test_merge_dedups_rows_by_key(self):
        # A torn shard must not double-count a cell another shard owns.
        a = self.shard("a", [self.row(1, 0, "k0")])
        b = self.shard("b", [self.row(1, 0, "k0"), self.row(1, 1, "k1")])
        merged = RunManifest.merge([a, b])
        assert len(merged.cells) == 2

    def test_merge_dedups_failures_by_key(self):
        failure = {"params": {"x": 2}, "seed": 0, "key": "kf",
                   "exc_type": "RuntimeError", "message": "boom",
                   "attempts": 3, "wall_s_per_attempt": [], "traceback": ""}
        a = self.shard("a", [], failures=[failure])
        b = self.shard("b", [], failures=[dict(failure)])
        merged = RunManifest.merge([a, b])
        assert len(merged.failures) == 1

    def test_merge_rejects_mismatched_functions(self):
        import pytest

        a = self.shard("a", [])
        b = self.shard("b", [], fn="other.fn")
        with pytest.raises(ValueError, match="disagree"):
            RunManifest.merge([a, b])
        with pytest.raises(ValueError, match="at least one"):
            RunManifest.merge([])

    def test_merged_describe_mentions_distributed_counters(self):
        a = self.shard("a", [self.row(1, 0, "k0")],
                       takeovers=1, zombie_writes_fenced=1, cache_tmp_reaped=2)
        merged = RunManifest.merge([a])
        text = merged.describe()
        assert "1 lease takeover(s)" in text
        assert "1 fenced zombie write(s)" in text
        assert "2 tmp file(s) reaped" in text

    def test_quarantined_count_in_describe(self):
        failure = {"params": {"x": 2}, "seed": 0, "key": "kf",
                   "exc_type": "RuntimeError", "message": "boom",
                   "attempts": 3, "wall_s_per_attempt": [], "traceback": ""}
        m = RunManifest(fn="f", n_cells=2, failures=[failure])
        assert "quarantined=1" in m.describe()
