"""Run manifests: field inference, archiving, the audit round trip."""

import json

from repro.orchestrate import ResultCache, RunManifest, expand_grid, git_sha, run_cells

from tests.orchestrate.cellfns import affine_cell


class TestManifestContents:
    def test_grid_and_fixed_inferred(self):
        run = run_cells(affine_cell, expand_grid("x", [1, 2], [0, 1]))
        m = run.manifest
        assert m.grid == {"x": [1, 2]}
        assert m.seeds == [0, 1]
        assert m.n_cells == 4
        assert m.workers == 0
        assert m.cache_dir is None
        assert m.fn.endswith("cellfns.affine_cell")

    def test_fixed_params_separated_from_grid(self):
        run = run_cells(affine_cell, expand_grid("x", [1, 2], [0]))
        assert "x" in run.manifest.grid
        cells = expand_grid("x", [5], [0])  # nothing varies
        assert run_cells(affine_cell, cells).manifest.fixed == {"x": 5}

    def test_per_cell_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = run_cells(affine_cell, expand_grid("x", [1], [0, 1]), cache=cache)
        records = run.manifest.cells
        assert len(records) == 2
        assert all(set(r) == {"params", "seed", "key", "cached", "wall_s", "attempts"}
                   for r in records)
        assert all(r["cached"] is False and r["wall_s"] >= 0 for r in records)
        assert all(r["attempts"] == 1 for r in records)
        assert all(len(r["key"]) == 64 for r in records)

    def test_git_sha_recorded_in_checkout(self):
        run = run_cells(affine_cell, expand_grid("x", [1], [0]))
        # This repo's tests always run from a checkout.
        assert run.manifest.git_sha == git_sha()
        assert run.manifest.git_sha and len(run.manifest.git_sha) == 40

    def test_describe_mentions_cache_only_when_caching(self, tmp_path):
        plain = run_cells(affine_cell, expand_grid("x", [1], [0]))
        assert "cache" not in plain.manifest.describe()
        cached = run_cells(
            affine_cell, expand_grid("x", [1], [0]), cache=ResultCache(tmp_path)
        )
        assert "cache 0/1 hits" in cached.manifest.describe()


class TestManifestIO:
    def test_write_read_roundtrip(self, tmp_path):
        run = run_cells(affine_cell, expand_grid("x", [1, 2], [0]))
        path = run.manifest.write(tmp_path / "run.manifest.json")
        data = json.loads(path.read_text())
        assert data["n_cells"] == 2
        assert data["hit_ratio"] == 0.0
        assert "started_at" in data and "python" in data
        back = RunManifest.read(path)
        assert back.grid == {"x": [1, 2]}
        assert back.cache_misses == 2

    def test_hit_ratio(self):
        m = RunManifest(fn="f", n_cells=4, cache_hits=3)
        assert m.hit_ratio == 0.75
        assert RunManifest(fn="f").hit_ratio == 0.0
