"""Retry policy, failure records, and the deterministic fault plan."""

import json
import pickle

import pytest

from repro.orchestrate import Cell, CellFault, InjectedFault, RetryPolicy, SweepFaultPlan
from repro.orchestrate.policy import (
    CellFailure,
    CellTimeout,
    describe_exception,
    timeout_info,
)


class TestRetryClassification:
    def test_defaults_retry_generic_exceptions(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.is_retryable(["RuntimeError", "Exception", "BaseException"])
        assert policy.is_retryable(["OSError", "Exception", "BaseException"])

    def test_programming_errors_are_fatal_by_default(self):
        policy = RetryPolicy(max_attempts=3)
        for name in ("TypeError", "ValueError", "AssertionError", "NotImplementedError"):
            assert not policy.is_retryable([name, "Exception", "BaseException"])

    def test_fatal_wins_over_retryable(self):
        policy = RetryPolicy(retry_on=("Exception",), fatal_on=("RuntimeError",))
        assert not policy.is_retryable(["RuntimeError", "Exception"])

    def test_mro_matching_catches_subclasses(self):
        # retry_on names match anywhere in the MRO: ConnectionError IS-A OSError.
        policy = RetryPolicy(retry_on=("OSError",), fatal_on=())
        mro = [c.__name__ for c in ConnectionError.__mro__ if c is not object]
        assert policy.is_retryable(mro)
        assert not policy.is_retryable(["KeyError", "LookupError", "Exception"])

    def test_classes_accepted_and_normalised_to_names(self):
        policy = RetryPolicy(retry_on=(OSError,), fatal_on=(ValueError,))
        assert policy.retry_on == ("OSError",)
        assert policy.fatal_on == ("ValueError",)

    def test_timeout_is_retryable_by_default(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.is_retryable(timeout_info(1.0, 2.0)["mro"])

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_factor=0.5)


class TestBackoff:
    def test_zero_base_means_no_delay(self):
        assert RetryPolicy().backoff_for("k" * 64, 1) == 0.0

    def test_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(backoff_s=0.1)
        assert policy.backoff_for("a" * 64, 1) == policy.backoff_for("a" * 64, 1)
        assert policy.backoff_for("a" * 64, 1) != policy.backoff_for("b" * 64, 1)
        assert policy.backoff_for("a" * 64, 1) != policy.backoff_for("a" * 64, 2)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=2.0, backoff_cap_s=3.0, jitter=0.0)
        assert policy.backoff_for("k", 1) == 1.0
        assert policy.backoff_for("k", 2) == 2.0
        assert policy.backoff_for("k", 3) == 3.0  # capped, not 4.0

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=1.0, jitter=0.5)
        for attempt in range(1, 20):
            delay = policy.backoff_for("key", attempt)
            assert 0.5 <= delay <= 1.5


class TestFailureRecords:
    def test_describe_exception_captures_raise_site(self):
        try:
            raise RuntimeError("kaboom")
        except RuntimeError as err:
            info = describe_exception(err)
        assert info["exc_type"] == "RuntimeError"
        assert info["message"] == "kaboom"
        assert "RuntimeError" in info["mro"] and "Exception" in info["mro"]
        assert 'raise RuntimeError("kaboom")' in info["traceback"]

    def test_cell_failure_from_infos_takes_last_attempt(self):
        infos = [
            {"exc_type": "OSError", "message": "flaky", "wall": 0.5, "traceback": "t1"},
            {"exc_type": "RuntimeError", "message": "dead", "wall": 1.25, "traceback": "t2"},
        ]
        failure = CellFailure.from_infos({"x": 1}, 7, "k" * 64, infos)
        assert failure.exc_type == "RuntimeError"
        assert failure.message == "dead"
        assert failure.attempts == 2
        assert failure.wall_s_per_attempt == [0.5, 1.25]
        assert failure.traceback == "t2"
        assert "Cell(x=1, seed=7)" in failure.summary()
        assert "2 attempt(s)" in failure.summary()

    def test_timeout_info_mro_names_cell_timeout(self):
        info = timeout_info(0.5, 0.9)
        assert info["exc_type"] == CellTimeout.__name__
        assert "cell_timeout=0.5s" in info["message"]
        assert info["traceback"] == ""


class TestCellFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            CellFault("explode")

    def test_matching_by_seed_params_attempt(self):
        fault = CellFault("raise", seed=3, params={"x": 2}, attempts=(1, 2))
        assert fault.matches(Cell({"x": 2, "k": 9}, 3), 1)
        assert fault.matches(Cell({"x": 2}, 3), 2)
        assert not fault.matches(Cell({"x": 2}, 3), 3)  # attempt
        assert not fault.matches(Cell({"x": 2}, 4), 1)  # seed
        assert not fault.matches(Cell({"x": 1}, 3), 1)  # params

    def test_wildcard_seed_matches_all(self):
        fault = CellFault("raise", params={"x": 1})
        assert fault.matches(Cell({"x": 1}, 0), 1)
        assert fault.matches(Cell({"x": 1}, 99), 1)

    def test_raise_fires_injected_fault(self):
        with pytest.raises(InjectedFault, match="transient"):
            CellFault("raise").fire(Cell({}, 0), 1)

    def test_kill_without_worker_degrades_to_raise(self):
        # Serial mode: no worker process to kill; the fault must not take
        # down the orchestrating process itself.
        with pytest.raises(InjectedFault, match="simulated worker SIGKILL"):
            CellFault("kill").fire(Cell({}, 0), 1)

    def test_once_marker_makes_fault_one_shot(self, tmp_path):
        marker = tmp_path / "fired"
        fault = CellFault("raise", once_marker=str(marker))
        with pytest.raises(InjectedFault):
            fault.fire(Cell({}, 0), 1)
        assert marker.exists()
        fault.fire(Cell({}, 0), 1)  # spent: no raise

    def test_dict_roundtrip(self):
        fault = CellFault(
            "kill", seed=2, params={"x": 1}, attempts=(1, 3),
            message="die", once_marker="/tmp/m",
        )
        assert CellFault.from_dict(fault.to_dict()) == fault

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown CellFault field"):
            CellFault.from_dict({"kind": "raise", "when": "now"})


class TestSweepFaultPlan:
    def test_first_matching_fault_fires(self):
        plan = SweepFaultPlan((
            CellFault("raise", seed=0, message="first"),
            CellFault("raise", seed=0, message="second"),
        ))
        with pytest.raises(InjectedFault, match="first"):
            plan(Cell({}, 0), 1)
        plan(Cell({}, 1), 1)  # no match: no-op

    def test_json_roundtrip_through_file(self, tmp_path):
        plan = SweepFaultPlan((
            CellFault("kill", seed=1, params={"beta": 1.0}, once_marker="m"),
            CellFault("raise", seed=2, attempts=(1, 2)),
            CellFault("sleep", sleep_s=0.5),
        ))
        path = plan.save(tmp_path / "plan.json")
        assert SweepFaultPlan.load(path) == plan
        # The file is plain JSON (hand-editable, CI-writable).
        assert json.loads(path.read_text())["faults"][0]["kind"] == "kill"

    def test_plan_pickles_to_workers(self):
        plan = SweepFaultPlan((CellFault("raise", seed=1),))
        assert pickle.loads(pickle.dumps(plan)) == plan
