"""Crash resumability: a killed sweep resumes from its completed cells.

The scenario the orchestrator exists for — a long sweep is SIGKILLed
partway through, and the re-run (same grid, same cache dir) recomputes
only the cells that never finished, producing rows identical to an
uninterrupted serial run.
"""

import importlib.util
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro

SRC = str(Path(repro.__file__).resolve().parents[1])

#: The sweep the victim process runs: slow enough per cell that the kill
#: lands mid-run, small enough that the test stays fast.
SLOWMOD = '''\
import time

def slow_cell(x, seed):
    time.sleep(0.15)
    return {"x_used": x, "seed_used": seed, "y": 100 * x + seed}
'''

VALUES = [1, 2, 3, 4, 5]
SEEDS = [0, 1]


def _load_slowmod(tmp_path):
    path = tmp_path / "slowmod.py"
    path.write_text(SLOWMOD)
    spec = importlib.util.spec_from_file_location("slowmod", path)
    module = importlib.util.module_from_spec(spec)
    # Registered under its real name so worker processes (fork) and the
    # cache key (qualname "slowmod.slow_cell") agree with the victim run.
    sys.modules["slowmod"] = module
    spec.loader.exec_module(module)
    return module


def _victim_script(tmp_path, cache_dir):
    return (
        f"import sys\n"
        f"sys.path.insert(0, {str(tmp_path)!r})\n"
        f"sys.path.insert(0, {SRC!r})\n"
        f"from repro.bench.harness import sweep_cells\n"
        f"import slowmod\n"
        f"sweep_cells(slowmod.slow_cell, 'x', {VALUES!r}, {SEEDS!r}, "
        f"cache_dir={str(cache_dir)!r})\n"
    )


def _completed_cells(cache_dir):
    return sorted(cache_dir.glob("??/*.json")) if cache_dir.exists() else []


def test_mid_run_kill_then_resume(tmp_path):
    slowmod = _load_slowmod(tmp_path)
    try:
        cache_dir = tmp_path / "cells"
        victim = subprocess.Popen(
            [sys.executable, "-c", _victim_script(tmp_path, cache_dir)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Let at least two cells land on disk, then kill without warning.
        deadline = time.time() + 60
        while time.time() < deadline and victim.poll() is None:
            if len(_completed_cells(cache_dir)) >= 2:
                break
            time.sleep(0.02)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        survived = len(_completed_cells(cache_dir))
        total = len(VALUES) * len(SEEDS)
        assert survived >= 2, "kill landed before any cell was persisted"

        from repro.bench.harness import sweep_cells

        # Resume with the same grid and cache: only missing cells run.
        resumed = sweep_cells(
            slowmod.slow_cell, "x", VALUES, SEEDS, workers=2, cache_dir=cache_dir
        )
        manifest = resumed.manifest
        assert manifest.cache_hits == survived
        assert manifest.cache_misses == total - survived
        assert manifest.cache_hits > 0

        # And the resumed rows are identical to an uninterrupted serial run.
        serial = sweep_cells(slowmod.slow_cell, "x", VALUES, SEEDS)
        assert resumed.payloads() == serial.payloads()
    finally:
        sys.modules.pop("slowmod", None)


def test_interrupted_serial_cache_write_is_atomic(tmp_path):
    """A cache directory containing only torn temp files is a clean miss."""
    slowmod = _load_slowmod(tmp_path)
    try:
        cache_dir = tmp_path / "cells"
        sub = cache_dir / "ab"
        sub.mkdir(parents=True)
        (sub / "deadbeef.tmp").write_text('{"key": "partial')  # torn write
        from repro.bench.harness import sweep_cells

        run = sweep_cells(slowmod.slow_cell, "x", [1], [0], cache_dir=cache_dir)
        assert run.manifest.cache_hits == 0
        assert run.payloads() == [{"x_used": 1, "seed_used": 0, "y": 100}]
    finally:
        sys.modules.pop("slowmod", None)
