"""Module-level sweep functions for orchestrator tests.

Worker processes import sweep functions by reference, so everything the
parallel tests run must live at module level — lambdas and closures are
serial-only by design (see ``repro.orchestrate.runner``).
"""

from __future__ import annotations

import numpy as np


def affine_cell(x, seed):
    """Deterministic, instant: row is a pure function of (x, seed)."""
    return {"x": x, "seed_used": seed, "y": 100 * x + seed}


def rng_cell(x, seed):
    """Draws through NumPy from the cell seed: float round-trip check."""
    rng = np.random.default_rng(seed)
    draws = rng.normal(loc=float(x), size=8)
    return {
        "mean": float(draws.mean()),
        "mx": float(draws.max()),
        "positive": bool(draws.mean() > 0),
    }


def flaky_keys_cell(x, seed):
    """Misbehaving fn: seed 3 grows an extra column."""
    row = {"value": x + seed}
    if seed == 3:
        row["surprise"] = 1
    return row


def failing_cell(x, seed):
    if x == 2:
        raise RuntimeError("boom at x=2")
    return {"value": x}


def fatal_cell(x, seed):
    """Deterministic programming error: fatal under the default policy."""
    raise ValueError(f"bad parameter x={x}")


def hammer_cache(root, key, worker_id, iterations):
    """Concurrent-writer workload: repeatedly persist the same cell key.

    Run from several processes at once against a shared cache root to
    exercise the atomic temp-file + rename path — any interleaving must
    leave a complete, parseable entry on disk.
    """
    from repro.orchestrate import ResultCache

    cache = ResultCache(root)
    for i in range(iterations):
        cache.put(key, {"worker": worker_id, "i": i, "blob": "x" * 4096})
    return worker_id
