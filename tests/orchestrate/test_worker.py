"""Queue workers: draining, crash takeover, zombie fencing, quarantine.

Workers are hosted in threads here (``allow_sigkill=False``, so an
injected ``"kill"`` raises :class:`InjectedWorkerCrash` and unwinds one
worker's loop while the process survives); the CLI-level tests and the
CI ``orchestrate-distributed`` job exercise real processes with real
``SIGKILL``.  Faults address cells by ``(params, seed, fencing token)``,
never by timing, so every scenario is deterministic in *what* happens —
only the interleaving varies, which is exactly what the protocol must
not care about.
"""

import threading

import pytest

from repro.orchestrate import (
    CellFault,
    InjectedWorkerCrash,
    JobQueue,
    QueueWorker,
    SweepFaultPlan,
    expand_grid,
    run_cells,
    strip_volatile,
)

from tests.orchestrate.cellfns import affine_cell, failing_cell, fatal_cell

GRID = expand_grid("x", [1, 2, 3, 4], [0, 1, 2, 3])


def run_workers(queue, fn, n, fault_plan=None, poll_s=0.02):
    """Drive n thread-hosted workers to completion; returns reports.

    A worker that dies to an injected crash records the exception in
    place of its report — the queue-level assertions must hold anyway.
    """
    workers = [
        QueueWorker(queue, fn, worker_id=f"w{i}", fault_plan=fault_plan, poll_s=poll_s)
        for i in range(n)
    ]
    outcomes = {}

    def drive(worker):
        try:
            outcomes[worker.worker_id] = worker.run()
        except InjectedWorkerCrash as crash:
            outcomes[worker.worker_id] = crash

    threads = [threading.Thread(target=drive, args=(w,)) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "worker thread hung"
    return outcomes


class TestSingleWorker:
    def test_drains_whole_grid(self, tmp_path):
        queue = JobQueue(tmp_path / "q", affine_cell, GRID, lease_ttl_s=5.0)
        report = QueueWorker(queue, affine_cell, worker_id="solo").run()
        assert queue.drained()
        assert report.cells_claimed == len(GRID)
        assert report.cells_committed == len(GRID)
        assert report.takeovers == 0 and report.zombie_writes_fenced == 0

    def test_rows_match_serial_run(self, tmp_path):
        queue = JobQueue(tmp_path / "q", affine_cell, GRID, lease_ttl_s=5.0)
        QueueWorker(queue, affine_cell, worker_id="solo").run()
        rows, failures = queue.collect()
        serial = run_cells(affine_cell, GRID)
        assert failures == []
        assert strip_volatile(rows) == strip_volatile(serial.payloads())

    def test_shard_manifest_archived(self, tmp_path):
        queue = JobQueue(tmp_path / "q", affine_cell, GRID, lease_ttl_s=5.0)
        report = QueueWorker(queue, affine_cell, worker_id="solo").run()
        assert queue.shard_manifest_path("solo").is_file()
        m = report.manifest
        assert m.extra["worker_id"] == "solo"
        assert m.extra["cells_claimed"] == len(GRID)
        assert len(m.cells) == len(GRID)
        assert m.grid == {"x": [1, 2, 3, 4]}

    def test_orphaned_cache_entry_committed_as_hit(self, tmp_path):
        # A predecessor crashed between the cache write and the done
        # marker: the payload is on disk, unreferenced.  The next
        # claimant must adopt it rather than recompute.
        queue = JobQueue(tmp_path / "q", affine_cell, GRID, lease_ttl_s=5.0)
        key = queue.keys[0]
        cell = queue.by_key[key]
        queue.cache.put(key, affine_cell(**cell.kwargs()))
        report = QueueWorker(queue, affine_cell, worker_id="heir").run()
        assert report.cache_hits == 1
        assert queue.read_done(key)["cached"] is True
        rows, _ = queue.collect()
        assert strip_volatile(rows) == strip_volatile(
            run_cells(affine_cell, GRID).payloads()
        )


class TestMultiWorker:
    def test_two_workers_split_the_grid(self, tmp_path):
        queue = JobQueue(tmp_path / "q", affine_cell, GRID, lease_ttl_s=5.0)
        outcomes = run_workers(queue, affine_cell, 2)
        assert queue.drained()
        committed = sum(r.cells_committed for r in outcomes.values())
        assert committed == len(GRID)  # every cell exactly once
        merged = queue.merged_manifest()
        assert len(merged.cells) == len(GRID)
        assert merged.extra["merged_from"] == 2

    def test_worker_id_collision_is_safe(self, tmp_path):
        # Two workers accidentally launched with the same id must not
        # corrupt the queue: nonces (host:pid:id:counter) still differ.
        queue = JobQueue(tmp_path / "q", affine_cell, GRID, lease_ttl_s=5.0)
        workers = [
            QueueWorker(queue, affine_cell, worker_id="same", poll_s=0.02)
            for _ in range(2)
        ]
        threads = [threading.Thread(target=w.run) for w in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert queue.drained()
        rows, _ = queue.collect()
        assert strip_volatile(rows) == strip_volatile(
            run_cells(affine_cell, GRID).payloads()
        )


class TestQuarantine:
    def test_poison_cell_quarantined_lone_worker(self, tmp_path):
        grid = expand_grid("x", [1, 2, 3], [0])
        queue = JobQueue(
            tmp_path / "q", failing_cell, grid, lease_ttl_s=5.0, max_attempts=3
        )
        report = QueueWorker(queue, failing_cell, worker_id="solo").run()
        assert queue.drained()
        rows, failures = queue.collect()
        assert [r["value"] for r in rows] == [1, 3]
        assert len(failures) == 1
        assert failures[0].attempts == 3
        assert failures[0].exc_type == "RuntimeError"
        assert report.failures_recorded == 3
        # Fencing tokens are the attempt numbers: three claims happened.
        assert queue.failure_records(failures[0].key)[-1]["token"] == 3

    def test_poison_cell_attempts_land_on_distinct_workers(self, tmp_path):
        grid = expand_grid("x", [1, 2, 3], [0])
        queue = JobQueue(
            tmp_path / "q", failing_cell, grid, lease_ttl_s=5.0, max_attempts=3
        )
        run_workers(queue, failing_cell, 3)
        assert queue.drained()
        record = queue.quarantine_records()[0]
        # Workers defer cells they already failed (an idle grace gives
        # other workers first refusal), so the verdict rests on several
        # workers' evidence.  Distinctness is best-effort — scheduling
        # may let a worker retry before a slow peer arrives — so assert
        # the guarantee, not the ideal.
        assert record["attempts"] == 3
        assert len(record["workers"]) >= 2

    def test_fatal_cell_quarantined_after_one_attempt(self, tmp_path):
        grid = expand_grid("x", [1], [0])
        queue = JobQueue(
            tmp_path / "q", fatal_cell, grid, lease_ttl_s=5.0, max_attempts=5
        )
        QueueWorker(queue, fatal_cell, worker_id="solo").run()
        _, failures = queue.collect()
        assert failures[0].exc_type == "ValueError"
        assert failures[0].attempts == 1


class TestCrashTakeover:
    def test_killed_worker_cell_is_taken_over(self, tmp_path):
        queue = JobQueue(
            tmp_path / "q", affine_cell, GRID, lease_ttl_s=0.6, heartbeat_s=0.15
        )
        plan = SweepFaultPlan(
            (CellFault("kill", params={"x": 2}, seed=1, attempts=(1,)),)
        )
        outcomes = run_workers(queue, affine_cell, 2, fault_plan=plan)
        assert queue.drained()
        crashes = [o for o in outcomes.values() if isinstance(o, InjectedWorkerCrash)]
        assert len(crashes) == 1
        rows, failures = queue.collect()
        assert failures == []
        assert strip_volatile(rows) == strip_volatile(
            run_cells(affine_cell, GRID).payloads()
        )
        merged = queue.merged_manifest()
        assert merged.takeovers == 1
        # The victim cell's winning token records the takeover.
        victim_key = next(
            k for k, c in queue.by_key.items()
            if c.params == {"x": 2} and c.seed == 1
        )
        assert queue.read_done(victim_key)["token"] == 2
        assert queue.read_done(victim_key)["takeover"] is True

    def test_paused_heartbeat_loses_the_lease(self, tmp_path):
        # The zombie-adjacent scenario: the owner is alive but silent
        # past the TTL, so another worker takes over mid-compute and the
        # original commit must fence.
        import time as _time

        from repro.orchestrate.worker import _Heartbeat

        queue = JobQueue(
            tmp_path / "q", affine_cell, GRID, lease_ttl_s=0.4, heartbeat_s=0.1
        )
        key = queue.keys[0]
        claim = queue.try_claim(key, "sleepy")
        heartbeat = _Heartbeat(
            queue, claim, queue.heartbeat_s, initial_pause_s=10.0
        )
        heartbeat.start()
        _time.sleep(queue.lease_ttl_s + 0.2)
        rescue = queue.try_claim(key, "rescuer")
        assert rescue is not None and rescue.takeover
        heartbeat.stop()
        cell = queue.by_key[key]
        assert queue.commit(claim, cell, affine_cell(**cell.kwargs())) == "fenced"
        assert queue.commit(rescue, cell, affine_cell(**cell.kwargs())) == "committed"


@pytest.mark.parametrize("base_seed", range(3))
def test_acceptance_chaos_queue_matches_fault_free_serial(base_seed, tmp_path):
    """ISSUE 6 acceptance: 3 workers, one killed mid-lease, one zombie.

    One worker is killed holding a lease (its cell taken over after the
    TTL), another computes a cell, overshoots the TTL before committing,
    and replays the write after a takeover superseded its token.  The
    sweep must still complete byte-identically (volatile fields
    stripped) to a fault-free serial run, the merged manifest must count
    both takeovers and the fenced zombie write, and no cell may be
    computed by two workers without an intervening lease expiry.
    """
    seeds = [base_seed, base_seed + 1, base_seed + 2, base_seed + 3]
    grid = expand_grid("x", [1, 2, 3, 4], seeds)
    serial = run_cells(affine_cell, grid)

    queue = JobQueue(
        tmp_path / "q", affine_cell, grid, lease_ttl_s=0.8, heartbeat_s=0.2
    )
    plan = SweepFaultPlan(
        (
            CellFault("kill", params={"x": 2}, seed=seeds[1], attempts=(1,)),
            CellFault(
                "zombie", params={"x": 3}, seed=seeds[2], attempts=(1,), sleep_s=1.7
            ),
        )
    )
    outcomes = run_workers(queue, affine_cell, 3, fault_plan=plan)

    assert queue.drained(), queue.counts()
    rows, failures = queue.collect()
    assert failures == []
    assert strip_volatile(rows) == strip_volatile(serial.payloads())

    merged = queue.merged_manifest()
    assert merged.takeovers == 2  # the kill victim and the zombie's cell
    assert merged.zombie_writes_fenced == 1
    assert len(merged.cells) == len(grid)
    crashes = [o for o in outcomes.values() if isinstance(o, InjectedWorkerCrash)]
    assert len(crashes) == 1

    # No double-compute without an intervening lease expiry: only the
    # two faulted cells may carry a token above 1, and the fenced
    # write's token must be strictly below the winner's.
    faulted = {
        next(k for k, c in queue.by_key.items()
             if c.params == {"x": 2} and c.seed == seeds[1]),
        next(k for k, c in queue.by_key.items()
             if c.params == {"x": 3} and c.seed == seeds[2]),
    }
    for key in queue.keys:
        token = queue.read_done(key)["token"]
        if key in faulted:
            assert token == 2
        else:
            assert token == 1
    (zombie_key,) = [k for k in faulted if queue.fenced_records(k)]
    (fence,) = queue.fenced_records(zombie_key)
    assert fence["token"] < queue.read_done(zombie_key)["token"]
