"""Result cache: canonical keys, atomic storage, corruption handling."""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.orchestrate import (
    ResultCache,
    cache_key,
    canonical_json,
    expand_grid,
    jsonify,
    qualname_of,
    run_cells,
    strip_volatile,
)

from tests.orchestrate.cellfns import affine_cell, hammer_cache


def module_fn(x, seed):
    return {"x": x}


class TestCanonicalisation:
    def test_key_order_does_not_matter(self):
        a = cache_key("f", {"x": 1, "y": 2}, 0)
        b = cache_key("f", {"y": 2, "x": 1}, 0)
        assert a == b

    def test_bool_int_float_are_distinct(self):
        keys = {
            cache_key("f", {"x": True}, 0),
            cache_key("f", {"x": 1}, 0),
            cache_key("f", {"x": 1.0}, 0),
        }
        assert len(keys) == 3

    def test_seed_config_and_fn_enter_the_key(self):
        base = cache_key("f", {"x": 1}, 0)
        assert cache_key("f", {"x": 1}, 1) != base
        assert cache_key("g", {"x": 1}, 0) != base
        assert cache_key("f", {"x": 1}, 0, config={"v": 2}) != base

    def test_numpy_params_hash_like_python(self):
        assert cache_key("f", {"x": np.float64(0.5)}, 0) == cache_key(
            "f", {"x": 0.5}, 0
        )
        assert cache_key("f", {"s": np.int32(7)}, 0) == cache_key("f", {"s": 7}, 0)

    def test_tuples_collapse_to_lists(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_jsonify_rejects_opaque_objects(self):
        with pytest.raises(TypeError, match="JSON-representable"):
            jsonify({"bad": object()})

    def test_jsonify_converts_numpy(self):
        out = jsonify({"a": np.float32(2.0), "b": np.arange(3)})
        assert out == {"a": 2.0, "b": [0, 1, 2]}
        assert type(out["a"]) is float

    def test_qualname_of(self):
        assert qualname_of(module_fn).endswith("test_cache.module_fn")
        assert qualname_of("already.dotted") == "already.dotted"

    def test_strip_volatile_recurses(self):
        row = {"elapsed_s": 1.0, "nested": {"ops_per_sec": 2.0, "keep": 3}}
        assert strip_volatile(row) == {"nested": {"keep": 3}}


class TestResultCache:
    def test_put_get_roundtrip_preserves_key_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"z_last": 1, "a_first": 2, "flag": True}
        key = cache_key("f", {"x": 1}, 0)
        cache.put(key, payload)
        got = cache.get(key)
        assert got == payload
        assert list(got) == ["z_last", "a_first", "flag"]  # byte-identical rows
        assert key in cache and len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("f", {"x": 1}, 0)
        cache.put(key, {"v": 1})
        cache.path_for(key).write_text("{ truncated")
        assert cache.get(key) is None

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("f", {"x": 1}, 0)
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_text(json.dumps([1, 2, 3]))
        assert cache.get(key) is None

    def test_no_temp_droppings_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key("f", {"x": 1}, 0), {"v": 1})
        assert not list(tmp_path.rglob("*.tmp"))


class TestProbe:
    """probe() distinguishes hit / miss / corrupt; get() keeps its old API."""

    def test_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("f", {"x": 1}, 0)
        cache.put(key, {"v": 1})
        assert cache.probe(key) == ({"v": 1}, "hit")

    def test_absent_entry_is_a_miss_not_corrupt(self, tmp_path):
        payload, status = ResultCache(tmp_path).probe("0" * 64)
        assert (payload, status) == (None, "miss")

    def test_truncated_entry_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("f", {"x": 1}, 0)
        cache.put(key, {"v": 1})
        cache.path_for(key).write_text("{ truncated")
        assert cache.probe(key) == (None, "corrupt")

    def test_wrong_shape_entry_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("f", {"x": 1}, 0)
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_text(json.dumps([1, 2, 3]))
        assert cache.probe(key) == (None, "corrupt")


class TestConcurrentWriters:
    def test_atomic_rename_survives_writer_races(self, tmp_path):
        # Several processes hammer the SAME key on a shared cache root.
        # Whatever the interleaving, the surviving entry must be one
        # writer's complete payload — never a torn or truncated file.
        key = cache_key("hammer", {"contended": True}, 0)
        n_workers, iterations = 4, 25
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            done = list(
                pool.map(
                    hammer_cache,
                    [str(tmp_path)] * n_workers,
                    [key] * n_workers,
                    range(n_workers),
                    [iterations] * n_workers,
                )
            )
        assert sorted(done) == list(range(n_workers))
        payload, status = ResultCache(tmp_path).probe(key)
        assert status == "hit"
        assert set(payload) == {"worker", "i", "blob"}
        assert payload["worker"] in range(n_workers)
        assert payload["i"] in range(iterations)
        assert payload["blob"] == "x" * 4096
        assert not list(tmp_path.rglob("*.tmp"))


class TestSelfHealing:
    def test_corrupt_entry_recomputed_and_rewritten(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = expand_grid("x", [1, 2, 3], [0])
        first = run_cells(affine_cell, cells, cache=cache)
        assert first.manifest.cache_corrupt == 0

        # Truncate one entry on disk, then resume.
        victim = first.results[1]
        cache.path_for(victim.key).write_text('{"payload": {"x":')
        healed = run_cells(affine_cell, cells, cache=cache)

        assert healed.manifest.cache_hits == 2
        assert healed.manifest.cache_corrupt == 1
        assert healed.manifest.cache_repairs == 1
        assert healed.payloads() == first.payloads()
        # The entry is whole again: a third run is all hits.
        third = run_cells(affine_cell, cells, cache=cache)
        assert third.manifest.cache_hits == 3
        assert third.manifest.cache_corrupt == 0
        assert third.manifest.cache_repairs == 0


class TestTempFileHygiene:
    def test_tmp_names_carry_host_and_pid(self, tmp_path, monkeypatch):
        # Freeze the replace step so the temp file is observable.
        import repro.orchestrate.cache as cache_mod

        seen = {}
        real_replace = os.replace

        def spy(src, dst):
            seen["tmp"] = str(src)
            return real_replace(src, dst)

        monkeypatch.setattr(cache_mod.os, "replace", spy)
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"v": 1})
        name = seen["tmp"].rsplit("/", 1)[-1]
        # <key12>.<host>-<pid>-<counter>.tmp — distinct across processes
        # and hosts sharing one cache directory over NFS.
        assert name.endswith(".tmp")
        assert f"-{os.getpid()}-" in name
        assert name.startswith("ab" * 6 + ".")

    def test_concurrent_puts_same_key_leave_no_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        for i in range(5):
            cache.put(key, {"i": i})
        assert cache.get(key) == {"i": 4}
        assert not list(tmp_path.rglob("*.tmp"))

    def test_gc_reaps_only_stale_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"v": 1})
        sub = cache.path_for(key).parent
        old = sub / f"{key[:12]}.deadhost-1-0.tmp"
        old.write_text("torn")
        ancient = time.time() - 7200
        os.utime(old, (ancient, ancient))
        fresh = sub / f"{key[:12]}.livehost-2-0.tmp"
        fresh.write_text("in flight")

        reaped = cache.gc_stale_tmp(max_age_s=3600.0)
        assert reaped == 1
        assert not old.exists()
        assert fresh.exists()  # a live writer's file is never yanked
        assert cache.get(key) == {"v": 1}

    def test_gc_zero_age_reaps_everything_after_drain(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("12" * 32, {"v": 1})
        sub = cache.path_for("12" * 32).parent
        (sub / "121212121212.host-9-0.tmp").write_text("orphan")
        # Only safe once no writers remain (e.g. a drained job queue).
        assert cache.gc_stale_tmp(max_age_s=0.0) == 1
        assert cache.gc_stale_tmp(max_age_s=0.0) == 0
