"""Result cache: canonical keys, atomic storage, corruption handling."""

import json

import numpy as np
import pytest

from repro.orchestrate import (
    ResultCache,
    cache_key,
    canonical_json,
    jsonify,
    qualname_of,
    strip_volatile,
)


def module_fn(x, seed):
    return {"x": x}


class TestCanonicalisation:
    def test_key_order_does_not_matter(self):
        a = cache_key("f", {"x": 1, "y": 2}, 0)
        b = cache_key("f", {"y": 2, "x": 1}, 0)
        assert a == b

    def test_bool_int_float_are_distinct(self):
        keys = {
            cache_key("f", {"x": True}, 0),
            cache_key("f", {"x": 1}, 0),
            cache_key("f", {"x": 1.0}, 0),
        }
        assert len(keys) == 3

    def test_seed_config_and_fn_enter_the_key(self):
        base = cache_key("f", {"x": 1}, 0)
        assert cache_key("f", {"x": 1}, 1) != base
        assert cache_key("g", {"x": 1}, 0) != base
        assert cache_key("f", {"x": 1}, 0, config={"v": 2}) != base

    def test_numpy_params_hash_like_python(self):
        assert cache_key("f", {"x": np.float64(0.5)}, 0) == cache_key(
            "f", {"x": 0.5}, 0
        )
        assert cache_key("f", {"s": np.int32(7)}, 0) == cache_key("f", {"s": 7}, 0)

    def test_tuples_collapse_to_lists(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_jsonify_rejects_opaque_objects(self):
        with pytest.raises(TypeError, match="JSON-representable"):
            jsonify({"bad": object()})

    def test_jsonify_converts_numpy(self):
        out = jsonify({"a": np.float32(2.0), "b": np.arange(3)})
        assert out == {"a": 2.0, "b": [0, 1, 2]}
        assert type(out["a"]) is float

    def test_qualname_of(self):
        assert qualname_of(module_fn).endswith("test_cache.module_fn")
        assert qualname_of("already.dotted") == "already.dotted"

    def test_strip_volatile_recurses(self):
        row = {"elapsed_s": 1.0, "nested": {"ops_per_sec": 2.0, "keep": 3}}
        assert strip_volatile(row) == {"nested": {"keep": 3}}


class TestResultCache:
    def test_put_get_roundtrip_preserves_key_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"z_last": 1, "a_first": 2, "flag": True}
        key = cache_key("f", {"x": 1}, 0)
        cache.put(key, payload)
        got = cache.get(key)
        assert got == payload
        assert list(got) == ["z_last", "a_first", "flag"]  # byte-identical rows
        assert key in cache and len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("f", {"x": 1}, 0)
        cache.put(key, {"v": 1})
        cache.path_for(key).write_text("{ truncated")
        assert cache.get(key) is None

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("f", {"x": 1}, 0)
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_text(json.dumps([1, 2, 3]))
        assert cache.get(key) is None

    def test_no_temp_droppings_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key("f", {"x": 1}, 0), {"v": 1})
        assert not list(tmp_path.rglob("*.tmp"))
