"""The cell runner: grids, determinism across workers, cache behavior."""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orchestrate import Cell, CellError, ResultCache, expand_grid, run_cells

from tests.orchestrate.cellfns import affine_cell, failing_cell, rng_cell


class TestExpandGrid:
    def test_row_major_order(self):
        cells = expand_grid("x", [1, 2], [10, 11], k=5)
        assert [(c.params["x"], c.seed) for c in cells] == [
            (1, 10), (1, 11), (2, 10), (2, 11)
        ]
        assert all(c.params["k"] == 5 for c in cells)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="parameter value"):
            expand_grid("x", [], [0])
        with pytest.raises(ValueError, match="seed"):
            expand_grid("x", [1], [])


class TestSerialRunner:
    def test_runs_in_grid_order(self):
        run = run_cells(affine_cell, expand_grid("x", [1, 2], [0, 1]))
        assert [r.payload["y"] for r in run.results] == [100, 101, 200, 201]
        assert not any(r.cached for r in run.results)

    def test_lambdas_allowed_serially(self):
        run = run_cells(lambda x, seed: {"v": x + seed}, [Cell({"x": 1}, 7)])
        assert run.payloads() == [{"v": 8}]

    def test_lambdas_rejected_for_workers(self):
        with pytest.raises(ValueError, match="module level"):
            run_cells(lambda x, seed: {"v": 1}, [Cell({"x": 1}, 0)], workers=2)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_cells(affine_cell, [Cell({"x": 1}, 0)], workers=-1)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(CellError, match="expected a dict"):
            run_cells(lambda x, seed: 42, [Cell({"x": 1}, 0)])

    def test_cell_error_names_the_cell(self):
        with pytest.raises(CellError, match=r"x=2.*boom"):
            run_cells(failing_cell, expand_grid("x", [1, 2, 3], [0]))


class TestParallelRunner:
    def test_matches_serial(self):
        cells = expand_grid("x", [1, 2, 3], [0, 1])
        serial = run_cells(affine_cell, cells)
        parallel = run_cells(affine_cell, cells, workers=4)
        assert parallel.payloads() == serial.payloads()

    def test_worker_exception_propagates_as_cell_error(self):
        with pytest.raises(CellError, match="x=2"):
            run_cells(failing_cell, expand_grid("x", [1, 2], [0]), workers=2)


class TestCaching:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = expand_grid("x", [1, 2], [0, 1])
        cold = run_cells(affine_cell, cells, cache=cache)
        assert cold.manifest.cache_hits == 0
        assert cold.manifest.cache_misses == 4
        warm = run_cells(affine_cell, cells, cache=cache)
        assert warm.manifest.cache_hits == 4
        assert warm.manifest.cache_misses == 0
        assert warm.payloads() == cold.payloads()
        assert all(r.cached for r in warm.results)

    def test_grid_extension_recomputes_only_new_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells(affine_cell, expand_grid("x", [1, 2], [0]), cache=cache)
        extended = run_cells(affine_cell, expand_grid("x", [1, 2, 3], [0]), cache=cache)
        assert extended.manifest.cache_hits == 2
        assert extended.manifest.cache_misses == 1
        assert [r.payload["y"] for r in extended.results] == [100, 200, 300]

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = expand_grid("x", [1], [0])
        run_cells(affine_cell, cells, cache=cache, config={"code": "v1"})
        rerun = run_cells(affine_cell, cells, cache=cache, config={"code": "v2"})
        assert rerun.manifest.cache_hits == 0


# The acceptance property: orchestrated (workers=4, cache cold and warm)
# and serial sweeps produce identical rows for identical seeds — floats
# included, because payloads are canonical JSON in every mode.
@settings(max_examples=8, deadline=None)
@given(
    values=st.lists(st.integers(-3, 3), min_size=1, max_size=3, unique=True),
    seeds=st.lists(st.integers(0, 50), min_size=1, max_size=3, unique=True),
)
def test_property_parallel_and_cached_match_serial(values, seeds):
    cells = expand_grid("x", values, seeds)
    serial = run_cells(rng_cell, cells).payloads()
    with tempfile.TemporaryDirectory() as d:
        cache = ResultCache(d)
        cold = run_cells(rng_cell, cells, workers=4, cache=cache)
        warm = run_cells(rng_cell, cells, workers=4, cache=cache)
    assert cold.payloads() == serial
    assert warm.payloads() == serial
    assert warm.manifest.cache_hits == len(cells)
