"""Retry backoff must respect the sweep deadline.

Regression tests for a sleep-past-the-deadline bug: a failing cell with
a large backoff (e.g. 5 s, against a sub-second deadline) used to park
the sweep in ``time.sleep`` for the full backoff before re-checking the
deadline — retrying cells the deadline had already condemned and holding
the caller hostage for up to ``backoff_cap_s``.  The fix clamps every
retry sleep (serial) and idle wait (parallel) to the time remaining.

Property, over 10 base seeds and both execution modes: a cell whose
retries would exceed the deadline is quarantined with
``SweepDeadlineExceeded`` promptly — not retried past the deadline, not
slept past it.
"""

import time

import pytest

from repro.orchestrate import RetryPolicy, expand_grid, run_cells

from tests.orchestrate.cellfns import failing_cell

#: Far larger than DEADLINE_S: an unclamped sleep is unmissable.
BIG_BACKOFF = RetryPolicy(
    max_attempts=20, backoff_s=5.0, backoff_cap_s=30.0, jitter=0.0
)
DEADLINE_S = 0.25
#: Generous CI slack, still far below one unclamped 5 s backoff.
PROMPT_S = 3.0


def run_deadline_sweep(base_seed: int, workers: int):
    cells = expand_grid("x", [1, 2], [base_seed])  # x=2 always fails
    t0 = time.monotonic()
    run = run_cells(
        failing_cell,
        cells,
        workers=workers,
        policy=BIG_BACKOFF,
        deadline=DEADLINE_S,
        on_error="quarantine",
    )
    return run, time.monotonic() - t0


@pytest.mark.parametrize("base_seed", range(10))
def test_serial_deadline_cuts_backoff_short(base_seed):
    run, elapsed = run_deadline_sweep(base_seed, workers=0)
    assert elapsed < PROMPT_S, f"slept past the deadline ({elapsed:.2f}s)"
    # The healthy cell completed; the poison cell was condemned by the
    # deadline, not retried through its 20-attempt budget.
    assert [r.payload["value"] for r in run.results] == [1]
    (failure,) = run.failures
    assert failure.exc_type == "SweepDeadlineExceeded"
    assert failure.seed == base_seed
    assert failure.attempts < 3, "kept retrying past the deadline"


@pytest.mark.parametrize("base_seed", range(10))
def test_parallel_deadline_cuts_backoff_short(base_seed):
    run, elapsed = run_deadline_sweep(base_seed, workers=2)
    assert elapsed < PROMPT_S + 2.0, f"slept past the deadline ({elapsed:.2f}s)"
    assert [r.payload["value"] for r in run.results] == [1]
    (failure,) = run.failures
    assert failure.exc_type == "SweepDeadlineExceeded"
    assert failure.attempts < 3


def test_deadline_failures_record_attempts_so_far():
    # The quarantine record distinguishes "never ran" (attempts 0) from
    # "failed then condemned mid-backoff" (attempts >= 1).
    run, _ = run_deadline_sweep(0, workers=0)
    (failure,) = run.failures
    assert failure.attempts >= 1
    assert len(failure.wall_s_per_attempt) == failure.attempts
