"""Fault-tolerant execution: retries, deadlines, crash recovery, quarantine.

Every scenario injects its faults through a deterministic
:class:`SweepFaultPlan` — faults address cells by ``(params, seed,
attempt)``, never by timing — so the assertions on rows *and* on the
manifest's fault counters hold exactly, run after run, in both serial
and parallel modes.
"""

import time

import pytest

from repro.orchestrate import (
    FAILURE_VOLATILE_KEYS,
    CellError,
    CellFault,
    PoolRestartBudgetError,
    ResultCache,
    RetryPolicy,
    SweepDeadlineError,
    SweepFaultPlan,
    canonical_json,
    expand_grid,
    run_cells,
    strip_volatile,
)

from tests.orchestrate.cellfns import affine_cell, failing_cell, fatal_cell

GRID = expand_grid("x", [1, 2, 3], [0, 1])


def failures_fingerprint(run):
    """The deterministic projection of a run's failures section."""
    return canonical_json(
        strip_volatile([f.to_dict() for f in run.failures], FAILURE_VOLATILE_KEYS)
    )


class TestSerialRetries:
    def test_transient_fault_retried_to_success(self):
        plan = SweepFaultPlan((CellFault("raise", seed=0, params={"x": 2}),))
        run = run_cells(
            affine_cell, GRID, policy=RetryPolicy(max_attempts=3), fault_hook=plan
        )
        baseline = run_cells(affine_cell, GRID)
        assert run.payloads() == baseline.payloads()
        assert run.ok
        assert run.manifest.retries == 1
        assert run.manifest.failures == []
        by_cell = {(r.cell.params["x"], r.cell.seed): r.attempts for r in run.results}
        assert by_cell[(2, 0)] == 2
        assert all(a == 1 for key, a in by_cell.items() if key != (2, 0))

    def test_fatal_exception_fails_on_first_attempt(self):
        with pytest.raises(CellError, match="bad parameter") as excinfo:
            run_cells(fatal_cell, GRID, policy=RetryPolicy(max_attempts=5))
        assert excinfo.value.failure.attempts == 1  # ValueError: no retries burned

    def test_retries_exhausted_raises_with_attempt_count(self):
        plan = SweepFaultPlan((CellFault("raise", seed=0, params={"x": 1}, attempts=(1, 2)),))
        with pytest.raises(CellError, match="after 2 attempt"):
            run_cells(affine_cell, GRID, policy=RetryPolicy(max_attempts=2), fault_hook=plan)

    def test_backoff_is_applied_between_attempts(self):
        plan = SweepFaultPlan((CellFault("raise", seed=0, params={"x": 1}),))
        policy = RetryPolicy(max_attempts=2, backoff_s=0.2, jitter=0.0)
        t0 = time.perf_counter()
        run = run_cells(affine_cell, GRID, policy=policy, fault_hook=plan)
        assert time.perf_counter() - t0 >= 0.2
        assert run.ok


class TestCellErrorChaining:
    def test_serial_message_carries_original_traceback(self):
        with pytest.raises(CellError) as excinfo:
            run_cells(failing_cell, expand_grid("x", [1, 2, 3], [0]))
        message = str(excinfo.value)
        assert "Cell(x=2, seed=0) failed after 1 attempt(s): RuntimeError: boom at x=2" in message
        # The failing source line survives into the message.
        assert 'raise RuntimeError("boom at x=2")' in message
        assert "failing_cell" in message
        # And the original exception is chained as the cause.
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_worker_message_carries_original_traceback(self):
        # The exception's traceback does not survive pickling from the
        # worker — only the string captured at the raise site does.
        with pytest.raises(CellError) as excinfo:
            run_cells(failing_cell, expand_grid("x", [1, 2, 3], [0]), workers=2)
        message = str(excinfo.value)
        assert 'raise RuntimeError("boom at x=2")' in message
        assert "failing_cell" in message
        assert excinfo.value.__cause__ is not None


class TestQuarantine:
    PLAN = SweepFaultPlan((CellFault("raise", seed=1, params={"x": 2}, attempts=(1, 2, 3)),))

    def test_partial_results_with_explicit_holes(self):
        run = run_cells(
            affine_cell, GRID,
            policy=RetryPolicy(max_attempts=3), fault_hook=self.PLAN,
            on_error="quarantine",
        )
        assert len(run.results) == 5 and len(run.failures) == 1
        assert not run.ok
        failure = run.failures[0]
        assert (failure.params, failure.seed) == ({"x": 2}, 1)
        assert failure.exc_type == "InjectedFault"
        assert failure.attempts == 3
        assert len(failure.wall_s_per_attempt) == 3
        # Completed rows are untouched and stay in grid order.
        survivors = [(r.cell.params["x"], r.cell.seed) for r in run.results]
        assert survivors == [(1, 0), (1, 1), (2, 0), (3, 0), (3, 1)]
        # The manifest records the same failures, with retries counted.
        assert len(run.manifest.failures) == 1
        assert run.manifest.failures[0]["exc_type"] == "InjectedFault"
        assert run.manifest.retries == 2

    def test_quarantined_cells_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = run_cells(
            affine_cell, GRID, cache=cache,
            policy=RetryPolicy(max_attempts=2), fault_hook=self.PLAN,
            on_error="quarantine",
        )
        assert len(run.results) == 5
        assert len(cache) == 5  # no poisoned entries on disk

    def test_on_error_validated(self):
        with pytest.raises(ValueError, match="on_error"):
            run_cells(affine_cell, GRID, on_error="ignore")


class TestRetryDeterminism:
    """Same seed + same fault schedule => byte-identical failures and
    identical surviving rows across serial, 4-worker, and resumed runs."""

    PLAN = SweepFaultPlan((
        CellFault("raise", seed=0, params={"x": 1}, attempts=(1, 2)),
        CellFault("raise", seed=1, params={"x": 3}, attempts=(1, 2)),
    ))
    POLICY = RetryPolicy(max_attempts=2)

    def _run(self, **kwargs):
        return run_cells(
            affine_cell, GRID, policy=self.POLICY, fault_hook=self.PLAN,
            on_error="quarantine", **kwargs,
        )

    def test_identical_across_modes_and_resume(self, tmp_path):
        serial = self._run()
        parallel = self._run(workers=4)
        cache = ResultCache(tmp_path)
        cold = self._run(cache=cache)
        resumed = self._run(cache=cache)  # survivors cached, failures re-tried

        fingerprint = failures_fingerprint(serial)
        assert len(serial.failures) == 2
        for other in (parallel, cold, resumed):
            assert failures_fingerprint(other) == fingerprint
            assert other.payloads() == serial.payloads()
        assert resumed.manifest.cache_hits == 4
        assert resumed.manifest.retries == 2  # quarantined cells retried again


class TestTimeouts:
    def test_parallel_hung_cell_abandoned_and_retried(self):
        plan = SweepFaultPlan((CellFault("sleep", seed=0, params={"x": 2}, sleep_s=10.0),))
        t0 = time.perf_counter()
        run = run_cells(
            affine_cell, GRID, workers=2,
            policy=RetryPolicy(max_attempts=2), cell_timeout=0.4, fault_hook=plan,
        )
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0, "hung worker was not abandoned"
        assert run.payloads() == run_cells(affine_cell, GRID).payloads()
        assert run.manifest.retries == 1
        assert run.manifest.pool_restarts == 1

    def test_serial_soft_timeout_checked_cooperatively(self):
        plan = SweepFaultPlan((CellFault("sleep", seed=1, params={"x": 1}, sleep_s=0.3),))
        run = run_cells(
            affine_cell, GRID,
            policy=RetryPolicy(max_attempts=2), cell_timeout=0.1, fault_hook=plan,
        )
        assert run.payloads() == run_cells(affine_cell, GRID).payloads()
        assert run.manifest.retries == 1

    def test_timeout_quarantines_when_exhausted(self):
        plan = SweepFaultPlan((
            CellFault("sleep", seed=0, params={"x": 3}, sleep_s=0.3, attempts=(1, 2)),
        ))
        run = run_cells(
            affine_cell, GRID,
            policy=RetryPolicy(max_attempts=2), cell_timeout=0.1, fault_hook=plan,
            on_error="quarantine",
        )
        assert len(run.failures) == 1
        assert run.failures[0].exc_type == "CellTimeout"
        assert "cell_timeout=0.1s" in run.failures[0].message

    def test_cell_timeout_validated(self):
        with pytest.raises(ValueError, match="cell_timeout"):
            run_cells(affine_cell, GRID, cell_timeout=0.0)


class TestSweepDeadline:
    def test_serial_deadline_quarantines_unfinished(self):
        run = run_cells(affine_cell, GRID, deadline=0.0, on_error="quarantine")
        assert run.results == [] and len(run.failures) == 6
        assert all(f.exc_type == "SweepDeadlineExceeded" for f in run.failures)
        assert all(f.attempts == 0 for f in run.failures)

    def test_parallel_deadline_quarantines_unfinished(self):
        run = run_cells(affine_cell, GRID, workers=2, deadline=0.0, on_error="quarantine")
        assert len(run.failures) == 6

    def test_deadline_raises_by_default(self):
        with pytest.raises(SweepDeadlineError, match="6 cell"):
            run_cells(affine_cell, GRID, deadline=0.0)

    def test_cached_cells_survive_an_expired_deadline(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells(affine_cell, GRID[:2], cache=cache)
        run = run_cells(affine_cell, GRID, cache=cache, deadline=0.0, on_error="quarantine")
        assert len(run.results) == 2 and len(run.failures) == 4
        assert all(r.cached for r in run.results)


class TestWorkerCrashRecovery:
    def test_sigkilled_worker_pool_is_rebuilt(self, tmp_path):
        plan = SweepFaultPlan((
            CellFault("kill", seed=0, params={"x": 2},
                      once_marker=str(tmp_path / "kill.marker")),
        ))
        run = run_cells(
            affine_cell, GRID, workers=2,
            policy=RetryPolicy(max_attempts=2), fault_hook=plan,
        )
        assert run.payloads() == run_cells(affine_cell, GRID).payloads()
        assert run.manifest.pool_restarts == 1
        assert run.manifest.failures == []
        # The crash is charged to the pool, not the cells: no cell burned
        # a retry on it.
        assert run.manifest.retries == 0

    def test_restart_budget_exhausted_raises(self, tmp_path):
        # No once-marker: the victim kills its worker on every attempt.
        plan = SweepFaultPlan((
            CellFault("kill", seed=0, params={"x": 1}, attempts=(1, 2, 3, 4)),
        ))
        with pytest.raises(PoolRestartBudgetError, match="max_pool_restarts=2"):
            run_cells(
                affine_cell, GRID, workers=2,
                policy=RetryPolicy(max_attempts=4), fault_hook=plan,
                max_pool_restarts=2,
            )

    def test_serial_mode_survives_the_same_plan(self, tmp_path):
        # A kill fault must not take down a serial (in-process) sweep.
        plan = SweepFaultPlan((
            CellFault("kill", seed=0, params={"x": 2},
                      once_marker=str(tmp_path / "kill.marker")),
        ))
        run = run_cells(
            affine_cell, GRID, policy=RetryPolicy(max_attempts=2), fault_hook=plan
        )
        assert run.payloads() == run_cells(affine_cell, GRID).payloads()
        assert run.manifest.retries == 1  # simulated as a retryable fault
        assert run.manifest.pool_restarts == 0


class TestLambdaHooksRejected:
    def test_lambda_fault_hook_rejected_for_workers(self):
        with pytest.raises(ValueError, match="fault_hook"):
            run_cells(affine_cell, GRID, workers=2, fault_hook=lambda cell, attempt: None)


# The ISSUE acceptance scenario: a 16-cell, 2-worker sweep with one
# worker SIGKILLed mid-run and a transient exception on two cells must
# complete with all 16 rows identical (after strip_volatile — here the
# cell fn emits no volatile keys, so payload equality is the same check)
# to a fault-free serial run, with the manifest counters matching the
# injected schedule exactly, across 10 base seeds.
@pytest.mark.parametrize("base_seed", range(10))
def test_acceptance_chaos_sweep_matches_fault_free_serial(base_seed, tmp_path):
    seeds = [base_seed * 100 + k for k in range(4)]
    cells = expand_grid("x", [1, 2, 3, 4], seeds)
    assert len(cells) == 16
    plan = SweepFaultPlan((
        CellFault("kill", seed=seeds[1], params={"x": 2},
                  once_marker=str(tmp_path / "kill.marker")),
        CellFault("raise", seed=seeds[0], params={"x": 3}),
        CellFault("raise", seed=seeds[2], params={"x": 4}),
    ))
    baseline = run_cells(affine_cell, cells)
    chaotic = run_cells(
        affine_cell, cells, workers=2,
        policy=RetryPolicy(max_attempts=3), fault_hook=plan,
    )
    assert [strip_volatile(p) for p in chaotic.payloads()] == [
        strip_volatile(p) for p in baseline.payloads()
    ]
    assert len(chaotic.results) == 16
    assert chaotic.manifest.failures == []
    assert chaotic.manifest.retries == 2  # exactly the two transient faults
    assert chaotic.manifest.pool_restarts == 1  # exactly the one SIGKILL
