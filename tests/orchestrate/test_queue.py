"""The lease protocol: claims, takeover, fencing, queue-wide quarantine.

These tests drive :class:`JobQueue` directly — no workers — so every
interleaving is explicit: claim races, stale leases, superseded tokens,
and the commit-time fence are each exercised at the protocol level.
Worker-level integration (heartbeats, chaos plans) lives in
``test_worker.py``.
"""

import os
import time

import pytest

from repro.orchestrate import (
    JobQueue,
    QueueSpecMismatch,
    LeaseLost,
    RetryPolicy,
    expand_grid,
)
from repro.orchestrate.policy import describe_exception

from tests.orchestrate.cellfns import affine_cell

GRID = expand_grid("x", [1, 2, 3], [0, 1])


def make_queue(root, **kwargs):
    kwargs.setdefault("lease_ttl_s", 5.0)
    return JobQueue(root / "q", affine_cell, GRID, **kwargs)


def age_lease(queue, key, by_s):
    """Backdate a lease file's mtime to simulate missed heartbeats."""
    path = queue.lease_path(key)
    old = time.time() - by_s
    os.utime(path, (old, old))


class TestSpec:
    def test_first_worker_creates_spec(self, tmp_path):
        queue = make_queue(tmp_path)
        assert (queue.root / "spec.json").is_file()
        assert len(queue.keys) == 6
        assert all(len(k) == 64 for k in queue.keys)

    def test_same_sweep_reattaches(self, tmp_path):
        first = make_queue(tmp_path)
        second = make_queue(tmp_path)
        assert first.keys == second.keys

    def test_different_grid_rejected(self, tmp_path):
        make_queue(tmp_path)
        other = expand_grid("x", [1, 2, 3, 4], [0, 1])
        with pytest.raises(QueueSpecMismatch, match="different sweep"):
            JobQueue(tmp_path / "q", affine_cell, other, lease_ttl_s=5.0)

    def test_different_config_rejected(self, tmp_path):
        make_queue(tmp_path)
        with pytest.raises(QueueSpecMismatch):
            JobQueue(
                tmp_path / "q", affine_cell, GRID,
                config={"code_version": 2}, lease_ttl_s=5.0,
            )

    def test_validates_parameters(self, tmp_path):
        with pytest.raises(ValueError, match="lease_ttl_s"):
            JobQueue(tmp_path / "q", affine_cell, GRID, lease_ttl_s=0)
        with pytest.raises(ValueError, match="heartbeat_s"):
            JobQueue(
                tmp_path / "q2", affine_cell, GRID,
                lease_ttl_s=1.0, heartbeat_s=2.0,
            )
        with pytest.raises(ValueError, match="max_attempts"):
            JobQueue(tmp_path / "q3", affine_cell, GRID, max_attempts=0)


class TestClaims:
    def test_fresh_claim_gets_token_one(self, tmp_path):
        queue = make_queue(tmp_path)
        claim = queue.try_claim(queue.keys[0], "w0")
        assert claim is not None
        assert claim.token == 1 and not claim.takeover

    def test_held_fresh_lease_is_not_claimable(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        assert queue.try_claim(key, "w0") is not None
        assert queue.try_claim(key, "w1") is None

    def test_released_lease_reclaims_with_bumped_token(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        first = queue.try_claim(key, "w0")
        queue.release(first)
        second = queue.try_claim(key, "w1")
        assert second is not None
        assert second.token == 2
        assert not second.takeover  # a clean release is not a crash takeover

    def test_stale_held_lease_is_taken_over(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        first = queue.try_claim(key, "w0")
        age_lease(queue, key, by_s=queue.lease_ttl_s + 1)
        second = queue.try_claim(key, "w1")
        assert second is not None
        assert second.token == first.token + 1
        assert second.takeover
        lease = queue.read_lease(key)
        assert lease["took_over_from"]["worker"] == "w0"

    def test_done_cell_is_not_claimable(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        claim = queue.try_claim(key, "w0")
        assert queue.commit(claim, queue.by_key[key], {"v": 1}) == "committed"
        assert queue.try_claim(key, "w1") is None

    def test_tokens_stay_monotonic_across_many_turnovers(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        for expected_token in range(1, 6):
            claim = queue.try_claim(key, f"w{expected_token}")
            assert claim.token == expected_token
            queue.release(claim)


class TestHeartbeatAndRenewal:
    def test_renew_refreshes_staleness(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        claim = queue.try_claim(key, "w0")
        age_lease(queue, key, by_s=queue.lease_ttl_s + 1)
        assert queue.lease_stale(key)
        queue.renew(claim)
        assert not queue.lease_stale(key)

    def test_renew_after_takeover_raises_lease_lost(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        original = queue.try_claim(key, "w0")
        age_lease(queue, key, by_s=queue.lease_ttl_s + 1)
        assert queue.try_claim(key, "w1") is not None
        with pytest.raises(LeaseLost):
            queue.renew(original)

    def test_release_by_superseded_claim_is_a_noop(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        original = queue.try_claim(key, "w0")
        age_lease(queue, key, by_s=queue.lease_ttl_s + 1)
        takeover = queue.try_claim(key, "w1")
        queue.release(original)  # must not clobber the takeover's lease
        lease = queue.read_lease(key)
        assert lease["nonce"] == takeover.nonce
        assert lease["state"] == "held"


class TestCommitFencing:
    def test_superseded_token_is_fenced_at_lease_check(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        zombie = queue.try_claim(key, "w0")
        age_lease(queue, key, by_s=queue.lease_ttl_s + 1)
        rescuer = queue.try_claim(key, "w1")
        # The zombie wakes up and tries to publish its stale computation.
        assert queue.commit(zombie, queue.by_key[key], {"v": "stale"}) == "fenced"
        assert not queue.is_done(key)
        # The takeover's commit is the one that lands.
        assert queue.commit(rescuer, queue.by_key[key], {"v": "fresh"}) == "committed"
        assert queue.cache.get(key) == {"v": "fresh"}
        assert queue.read_done(key)["token"] == rescuer.token

    def test_done_marker_is_the_linearisation_point(self, tmp_path):
        # Even if the zombie slips past the lease check (its lease file
        # still matches because nobody re-claimed yet), a marker that
        # already exists fences it.
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        first = queue.try_claim(key, "w0")
        queue.release(first)
        second = queue.try_claim(key, "w1")
        assert queue.commit(second, queue.by_key[key], {"v": "win"}) == "committed"
        # first's lease record is gone (owned by w1's released record) so
        # the lease check fences; exercise the marker path directly too.
        assert queue.commit(first, queue.by_key[key], {"v": "late"}) == "fenced"
        assert queue.cache.get(key) == {"v": "win"}

    def test_fenced_writes_leave_audit_records(self, tmp_path):
        queue = make_queue(tmp_path)
        key = queue.keys[0]
        zombie = queue.try_claim(key, "w0")
        age_lease(queue, key, by_s=queue.lease_ttl_s + 1)
        queue.try_claim(key, "w1")
        queue.commit(zombie, queue.by_key[key], {"v": 0})
        records = queue.fenced_records(key)
        assert len(records) == 1
        assert records[0]["token"] == zombie.token
        assert records[0]["stage"] == "lease"


class TestFailuresAndQuarantine:
    def failure_info(self, message="transient"):
        try:
            raise RuntimeError(message)
        except RuntimeError as err:
            return describe_exception(err)

    def test_failures_accumulate_until_max_attempts(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=3)
        key = queue.keys[0]
        for worker in ("w0", "w1"):
            claim = queue.try_claim(key, worker)
            queue.record_failure(claim, self.failure_info(), worker)
            assert queue.maybe_quarantine(key) is None
            queue.release(claim)
        claim = queue.try_claim(key, "w2")
        queue.record_failure(claim, self.failure_info(), "w2")
        failure = queue.maybe_quarantine(key)
        assert failure is not None
        assert failure.attempts == 3
        assert queue.is_quarantined(key)
        record = queue.quarantine_records()[0]
        assert record["workers"] == ["w0", "w1", "w2"]
        assert record["fatal"] is False

    def test_fatal_failure_quarantines_immediately(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=5)
        key = queue.keys[0]
        claim = queue.try_claim(key, "w0")
        try:
            raise ValueError("deterministic bug")
        except ValueError as err:
            queue.record_failure(claim, describe_exception(err), "w0")
        failure = queue.maybe_quarantine(key)
        assert failure is not None and failure.attempts == 1
        assert queue.quarantine_records()[0]["fatal"] is True

    def test_quarantine_race_has_one_winner(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=1)
        key = queue.keys[0]
        claim = queue.try_claim(key, "w0")
        queue.record_failure(claim, self.failure_info(), "w0")
        assert queue.maybe_quarantine(key) is not None
        assert queue.maybe_quarantine(key) is None  # second verdict defers

    def test_custom_policy_classifies_fatality(self, tmp_path):
        policy = RetryPolicy(max_attempts=3, fatal_on=("RuntimeError",))
        queue = make_queue(tmp_path, max_attempts=3, policy=policy)
        key = queue.keys[0]
        claim = queue.try_claim(key, "w0")
        queue.record_failure(claim, self.failure_info(), "w0")
        assert queue.maybe_quarantine(key) is not None  # fatal on attempt 1


class TestStateAndCollect:
    def test_counts_and_drained(self, tmp_path):
        queue = make_queue(tmp_path)
        assert queue.counts() == {
            "cells": 6, "done": 0, "quarantined": 0, "leased": 0, "open": 6,
        }
        assert not queue.drained()
        for key in queue.keys:
            claim = queue.try_claim(key, "w0")
            cell = queue.by_key[key]
            queue.commit(claim, cell, affine_cell(**cell.kwargs()))
        assert queue.drained()
        assert queue.counts()["done"] == 6

    def test_collect_returns_rows_in_grid_order(self, tmp_path):
        queue = make_queue(tmp_path)
        # Commit in scrambled order; collect must restore grid order.
        for key in reversed(queue.keys):
            claim = queue.try_claim(key, "w0")
            cell = queue.by_key[key]
            queue.commit(claim, cell, affine_cell(**cell.kwargs()))
        rows, failures = queue.collect()
        assert failures == []
        assert rows == [affine_cell(**c.kwargs()) for c in GRID]

    def test_to_sweep_run_mirrors_serial_run(self, tmp_path):
        from repro.orchestrate import run_cells, strip_volatile

        queue = make_queue(tmp_path)
        for key in queue.keys:
            claim = queue.try_claim(key, "w0")
            cell = queue.by_key[key]
            queue.commit(claim, cell, affine_cell(**cell.kwargs()), wall_s=0.5)
        run = queue.to_sweep_run()
        serial = run_cells(affine_cell, GRID)
        assert strip_volatile(run.payloads()) == strip_volatile(serial.payloads())
        assert [r.attempts for r in run.results] == [1] * 6
