"""Fixture-driven acceptance tests: every DET/SAN rule fires on its
must-flag fixture and stays quiet on the clean one."""

from pathlib import Path

from repro.staticcheck import run_check

FIXTURES = Path(__file__).parent / "fixtures"


def _rules(report):
    return sorted({f.rule for f in report.findings})


class TestDetRulesFire:
    def _report(self):
        return run_check([FIXTURES / "flagged"], entropy_boundary=("cli",))

    def test_all_det_rules_fire(self):
        assert _rules(self._report()) == [
            "DET101", "DET102", "DET103", "DET104", "DET105", "DET106",
        ]

    def test_det101_witness_is_the_helper_two_calls_down(self):
        """The root is the cell; the witness points at the helper's line
        and the path walks the chain."""
        findings = [
            f
            for f in self._report().findings
            if f.rule == "DET101" and f.symbol == "det_flags._entropy_helper"
        ]
        assert len(findings) == 1
        assert findings[0].path == (
            "det_flags.sweep_cell_entropy",
            "det_flags._entropy_middle",
            "det_flags._entropy_helper",
        )

    def test_det101_flags_as_generator_none(self):
        assert any(
            f.rule == "DET101" and "as_generator" in f.message
            for f in self._report().findings
        )

    def test_det102_flags_both_reach_and_payload_key(self):
        det102 = [f for f in self._report().findings if f.rule == "DET102"]
        assert any("wall clock" in f.message for f in det102)
        assert any("'timestamp'" in f.message for f in det102)

    def test_entropy_boundary_masks_cli_module(self):
        """cli.sweep_cell_boundary draws entropy but sits inside the
        declared boundary, so no finding points into cli.py."""
        assert not any(
            f.file.endswith("cli.py") for f in self._report().findings
        )
        # Without the boundary declaration the same site must flag.
        unmasked = run_check([FIXTURES / "flagged"], entropy_boundary=())
        assert any(f.file.endswith("cli.py") for f in unmasked.findings)

    def test_root_discovered_through_run_cells_call_site(self):
        """plain_cell is a root only via the run_cells(...) argument."""
        report = self._report()
        assert "orchestrated.plain_cell" in report.roots
        assert any(
            f.rule == "DET101" and f.symbol == "orchestrated.plain_cell"
            for f in report.findings
        )


class TestLockRulesFire:
    def _report(self):
        return run_check([FIXTURES / "locks"])

    def test_san105_hidden_reacquire_through_helper(self):
        san105 = [f for f in self._report().findings if f.rule == "SAN105"]
        assert len(san105) == 1
        assert san105[0].symbol == "lockchain.HiddenReacquire.remove"
        assert "_locks" in san105[0].message

    def test_san106_cycle_through_two_helper_calls(self):
        """The forward edge's second acquisition is two helpers deep;
        the cycle must still be found, with the witness chain."""
        san106 = [f for f in self._report().findings if f.rule == "SAN106"]
        assert len(san106) == 1
        finding = san106[0]
        assert "CrossOrder._a" in finding.message
        assert "CrossOrder._b" in finding.message
        assert finding.path == (
            "lockchain.CrossOrder.op_forward",
            "lockchain.CrossOrder._forward_outer",
            "lockchain.CrossOrder._forward_inner",
        )

    def test_tryacquire_restart_idiom_is_clean(self):
        """Opposite-order TryAcquire cannot close a wait cycle."""
        report = self._report()
        assert not any(
            f.file.endswith("tryacquire_ok.py") for f in report.findings
        )


class TestCleanFixture:
    def test_golden_report_zero_findings(self):
        report = run_check([FIXTURES / "clean"])
        assert report.ok
        assert report.findings == []
        assert report.suppressed == []
        assert report.roots == ["clean_cell.sweep_cell_clean"]
        assert report.modules_checked == 1
