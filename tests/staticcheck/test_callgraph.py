"""Unit tests for the call-graph builder on small synthetic trees."""

import textwrap

from repro.staticcheck.callgraph import Project


def _project(tmp_path, **modules):
    for name, body in modules.items():
        (tmp_path / f"{name}.py").write_text(textwrap.dedent(body))
    return Project.load(tmp_path, rel_base=tmp_path)


def _callees(project, qualname):
    return {callee for callee, _line in project.functions[qualname].calls}


class TestCallResolution:
    def test_direct_call_through_import(self, tmp_path):
        project = _project(
            tmp_path,
            a="""
            def helper():
                return 1
            """,
            b="""
            from a import helper

            def caller():
                return helper()
            """,
        )
        assert "a.helper" in _callees(project, "b.caller")

    def test_class_construction_resolves_to_init(self, tmp_path):
        project = _project(
            tmp_path,
            m="""
            class Widget:
                def __init__(self):
                    self.x = 1

            def build():
                return Widget()
            """,
        )
        assert "m.Widget.__init__" in _callees(project, "m.build")

    def test_self_method_and_inherited_method(self, tmp_path):
        project = _project(
            tmp_path,
            base="""
            class Base:
                def shared(self):
                    return 1
            """,
            child="""
            from base import Base

            class Child(Base):
                def run(self):
                    return self.shared()
            """,
        )
        assert "base.Base.shared" in _callees(project, "child.Child.run")

    def test_local_type_propagation(self, tmp_path):
        project = _project(
            tmp_path,
            m="""
            class Engine:
                def step(self):
                    return 1

            def drive():
                eng = Engine()
                return eng.step()
            """,
        )
        assert "m.Engine.step" in _callees(project, "m.drive")

    def test_conditional_alias_resolves_both_arms(self, tmp_path):
        project = _project(
            tmp_path,
            m="""
            def fast():
                return 1

            def slow():
                return 2

            def pick(flag):
                fn = fast if flag else slow
                return fn()
            """,
        )
        callees = _callees(project, "m.pick")
        assert {"m.fast", "m.slow"} <= callees


class TestSummariesAndPaths:
    def test_effects_propagate_to_fixpoint(self, tmp_path):
        project = _project(
            tmp_path,
            m="""
            import time

            def leaf():
                return time.time()

            def mid():
                return leaf()

            def top():
                return mid()
            """,
        )
        effects = {site.effect for site in project.summaries["m.top"]}
        assert "wall_clock" in effects

    def test_call_path_is_shortest_chain(self, tmp_path):
        project = _project(
            tmp_path,
            m="""
            def leaf():
                return 1

            def mid():
                return leaf()

            def top():
                return mid()
            """,
        )
        assert project.call_path("m.top", "m.leaf") == ["m.top", "m.mid", "m.leaf"]
        assert project.call_path("m.leaf", "m.top") == []

    def test_mutual_recursion_terminates(self, tmp_path):
        project = _project(
            tmp_path,
            m="""
            import os

            def ping(n):
                return pong(n - 1) if n else os.getenv("X")

            def pong(n):
                return ping(n - 1) if n else 0
            """,
        )
        assert any(s.effect == "env" for s in project.summaries["m.pong"])
