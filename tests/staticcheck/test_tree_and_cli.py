"""The checker against the real tree, and the `repro check` / `repro
lint --json` command surface."""

import json

import pytest

from repro.cli import main
from repro.staticcheck import run_check

from .test_fixtures import FIXTURES


class TestRealTree:
    def test_tree_is_clean(self):
        """ISSUE 7 acceptance: the shipped tree checks clean, and every
        suppression carries a written reason."""
        report = run_check()
        assert report.ok, report.describe()
        assert report.void_suppressions == []
        for sup in report.suppressed:
            assert sup.reason.strip(), sup.describe()

    def test_tree_roots_include_the_sweep_cells(self):
        roots = run_check().roots
        assert "repro.vector.sweep.sweep_cell_backend" in roots
        assert "repro.vector.sweep.sweep_cell_compare" in roots

    def test_tree_roots_include_the_service_entry_points(self):
        roots = run_check().roots
        assert "repro.service.server.run_service" in roots
        assert "repro.service.validate.compare_service_and_sim" in roots

    def test_wall_clock_boundary_masks_the_service_modules(self):
        """The live service's wall-clock reads are its product (latency,
        heartbeats), exempted by the declared boundary.  Dropping the
        declaration must unmask them — proving the boundary, not a hole
        in DET102, is what keeps the tree clean."""
        unmasked = run_check(wall_clock_boundary=())
        service_hits = [
            f
            for f in unmasked.findings
            if f.rule == "DET102" and "repro/service/" in f.file
        ]
        assert service_hits, "boundary removal should unmask service wall-clock reads"
        # Only DET102 reachability findings appear; no other rule regresses.
        assert all(f.rule == "DET102" for f in unmasked.findings)


class TestCheckCli:
    def test_check_clean_fixture_exits_zero(self, capsys):
        assert main(["check", str(FIXTURES / "clean")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_check_flagging_fixture_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", str(FIXTURES / "locks")])
        assert exc.value.code == 1
        assert "SAN106" in capsys.readouterr().out

    def test_check_json_output(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--json", str(FIXTURES / "locks")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert {f["rule"] for f in payload["findings"]} == {"SAN105", "SAN106"}

    def test_write_baseline_then_check_against_it(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "check",
                    str(FIXTURES / "locks"),
                    "--write-baseline",
                    str(baseline),
                    "--reason",
                    "fixture debt, tracked",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["check", str(FIXTURES / "locks"), "--baseline", str(baseline)]) == 0
        )
        out = capsys.readouterr().out
        assert "suppressed (baseline) — fixture debt, tracked" in out


class TestLintJson:
    def test_lint_json_structure(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert isinstance(payload["violations"], list)
        # The tree carries reasoned SAN suppressions; they must be listed.
        assert all(s["reason"] for s in payload["suppressed"])
