"""Suppression and baseline mechanics: counted, never silent."""

import json
import textwrap

import pytest

from repro.staticcheck import load_baseline, run_check, write_baseline
from repro.staticcheck.report import (
    CheckReport,
    Finding,
    apply_baseline,
    apply_inline_suppressions,
)


def _flagging_module(tmp_path, suffix=""):
    (tmp_path / "mod.py").write_text(
        textwrap.dedent(
            f"""
            import numpy as np


            def sweep_cell_bad(seed):
                return np.random.default_rng().random(){suffix}
            """
        )
    )
    return tmp_path


class TestInlineSuppressions:
    def test_reasoned_suppression_moves_finding(self, tmp_path):
        _flagging_module(
            tmp_path, suffix="  # staticcheck: allow(DET101) fixture exercising waiver"
        )
        report = run_check([tmp_path])
        assert report.ok
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].source == "inline"
        assert report.suppressed[0].reason == "fixture exercising waiver"

    def test_reasonless_suppression_is_void(self, tmp_path):
        _flagging_module(tmp_path, suffix="  # staticcheck: allow(DET101)")
        report = run_check([tmp_path])
        assert not report.ok
        assert len(report.findings) == 1
        assert len(report.void_suppressions) == 1
        assert "void" in report.describe()

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        _flagging_module(tmp_path, suffix="  # staticcheck: allow(DET102) wrong code")
        report = run_check([tmp_path])
        assert len(report.findings) == 1

    def test_line_above_suppresses(self):
        finding = Finding("DET101", "m.py", 10, "m.f", "boom")
        remaining, suppressed, void = apply_inline_suppressions(
            [finding], {"m.py": {9: ("DET101", "reason on line above")}}
        )
        assert remaining == [] and void == []
        assert suppressed[0].reason == "reason on line above"


class TestBaseline:
    def test_baseline_suppresses_and_counts(self, tmp_path):
        _flagging_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(
            baseline,
            run_check([tmp_path]).findings,
            reason="adopted before fixing",
        )
        report = run_check([tmp_path], baseline=baseline)
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].source == "baseline"

    def test_stale_baseline_entry_fails_the_run(self, tmp_path):
        (tmp_path / "mod.py").write_text("def sweep_cell_fine(seed):\n    return seed\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {
                            "rule": "DET101",
                            "file": "mod.py",
                            "symbol": "mod.sweep_cell_fine",
                            "reason": "was flagged once",
                        }
                    ],
                }
            )
        )
        report = run_check([tmp_path], baseline=baseline)
        assert not report.ok
        assert len(report.stale_baseline) == 1
        assert "STALE" in report.describe()

    def test_reasonless_baseline_entry_rejected(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                [{"rule": "DET101", "file": "m.py", "symbol": "m.f", "reason": "  "}]
            )
        )
        with pytest.raises(ValueError, match="never silent"):
            load_baseline(baseline)

    def test_write_baseline_dedupes_per_symbol(self, tmp_path):
        findings = [
            Finding("DET102", "m.py", 5, "m.f", "a"),
            Finding("DET102", "m.py", 9, "m.f", "b"),
        ]
        path = tmp_path / "b.json"
        write_baseline(path, findings, reason="two sites, one waiver")
        assert len(load_baseline(path)) == 1

    def test_matching_is_by_path_suffix(self):
        report = CheckReport(
            findings=[Finding("DET103", "src/repro/m.py", 3, "repro.m.f", "env")]
        )
        report = apply_baseline(
            report,
            [{"rule": "DET103", "file": "repro/m.py", "symbol": "repro.m.f",
              "reason": "host tag is display-only"}],
        )
        assert report.findings == [] and report.stale_baseline == []


class TestReportShape:
    def test_json_roundtrip_fields(self, tmp_path):
        _flagging_module(tmp_path)
        payload = run_check([tmp_path]).to_dict()
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert {"rule", "file", "line", "symbol", "message"} <= set(finding)
        assert payload["rules"]["DET101"]
