"""Clean lock fixture: TryAcquire never blocks, so it cannot be the
*target* of a wait-for edge — opposite orders via try-acquire are fine
(the restart idiom the MultiQueue operations use)."""

from repro.sim.syscalls import Acquire, Release, TryAcquire


class RestartIdiom:
    def __init__(self, lock_a, lock_b):
        self._a = lock_a
        self._b = lock_b

    def op_forward(self):
        yield Acquire(self._a)
        ok = yield TryAcquire(self._b)  # try: never a cycle target
        if ok:
            yield Release(self._b)
        yield Release(self._a)

    def op_backward(self):
        yield Acquire(self._b)
        ok = yield TryAcquire(self._a)
        if ok:
            yield Release(self._a)
        yield Release(self._b)
