"""Must-flag lock-order fixtures.

``HiddenReacquire`` trips SAN105: the lock array is blocking-acquired
again inside a helper while the caller already holds it, so ascending
index order cannot be proven across the call boundary.

``CrossOrder`` trips SAN106: two operations acquire the two locks in
opposite orders, and on one side the second acquisition sits **two
helper calls deep** — the cycle is only visible interprocedurally.
"""

from repro.sim.syscalls import Acquire, Release


class HiddenReacquire:
    def __init__(self, locks):
        self._locks = locks

    def _take_another(self, j):
        yield Acquire(self._locks[j])  # blocking re-acquire of a held array

    def remove(self, i, j):
        yield Acquire(self._locks[i])
        yield from self._take_another(j)  # SAN105 at this call
        yield Release(self._locks[j])
        yield Release(self._locks[i])


class CrossOrder:
    def __init__(self, lock_a, lock_b):
        self._a = lock_a
        self._b = lock_b

    # forward: a, then (two helpers down) b
    def _forward_inner(self):
        yield Acquire(self._b)

    def _forward_outer(self):
        yield from self._forward_inner()

    def op_forward(self):
        yield Acquire(self._a)
        yield from self._forward_outer()
        yield Release(self._b)
        yield Release(self._a)

    # backward: b, then a — closes the cycle
    def op_backward(self):
        yield Acquire(self._b)
        yield Acquire(self._a)
        yield Release(self._a)
        yield Release(self._b)
