"""The entropy boundary: unseeded generators are legal here (and only
here) when the test passes ``entropy_boundary=("cli",)``."""

import numpy as np


def sweep_cell_boundary(seed=None):
    return np.random.default_rng().random()  # masked by the boundary
