"""Must-flag fixtures: one sweep cell per DET rule.

Each cell is a determinism root (by its ``sweep_cell_`` name) whose body
— or a helper two calls down — commits exactly one class of purity
violation.  The analyzer test suite asserts each rule fires here and
points its witness at the right line.
"""

import os
import time

import numpy as np

from somewhere import as_generator  # resolved by terminal name, import is opaque

RESULT_CACHE = {}


def _entropy_helper():
    return np.random.default_rng()  # DET101: unseeded


def _entropy_middle():
    return _entropy_helper()


def sweep_cell_entropy(seed):
    # The violation is two helper calls down; only the summary sees it.
    return _entropy_middle().random()


def sweep_cell_entropy_coercer(seed):
    return as_generator(None).random()  # DET101: None outside the CLI


def sweep_cell_wall_clock(seed):
    started = time.time()  # DET102: wall clock reachable from a cell
    return {"value": 1.0, "timestamp": started}  # DET102: non-volatile key


def sweep_cell_env(seed):
    return {"host_tag": os.environ["HOSTNAME"]}  # DET103: env read


def sweep_cell_str_hash(seed):
    return {"key": hash("params")}  # DET104: salted builtin hash


def sweep_cell_set_iter(seed):
    names = {"a", "b", "c"}
    return [n for n in names]  # DET105: unordered set iteration


def sweep_cell_global_mut(seed):
    RESULT_CACHE[seed] = 1  # DET106: writes module-level state
    return seed
