"""Root discovery through an orchestration call site.

``plain_cell`` is *not* named ``sweep_cell_*``; it becomes a root only
because it is the function argument of a ``run_cells(...)`` call.
"""

import numpy as np

from repro.orchestrate import run_cells


def plain_cell(x, seed):
    return np.random.default_rng().random()  # DET101, root via run_cells


def launch(grid):
    return run_cells(plain_cell, grid)
