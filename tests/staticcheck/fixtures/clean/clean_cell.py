"""The golden clean fixture: a disciplined sweep cell.

Seeded generators, sorted iteration, locals only, timing confined to the
declared volatile keys, ascending single-order lock use — nothing here
may flag, and the golden-report test pins the whole report to
zero findings.
"""

import numpy as np

from repro.sim.syscalls import Acquire, Release

PAPER_BETAS = (1.0, 1.5, 2.0)


def _simulate(gen, steps):
    total = 0.0
    for _ in range(steps):
        total += gen.random()
    return total


def sweep_cell_clean(beta, seed, steps=100):
    gen = np.random.default_rng(seed)
    tags = {"warm", "steady"}
    ordered = sorted(tags)  # sorted set iteration is deterministic
    rows = {}
    for tag in ordered:
        rows[tag] = _simulate(gen, steps) * beta
    return {"beta": beta, "rows": rows}


class OrderedLocks:
    def __init__(self, locks):
        self._locks = locks

    def hold_pair(self, i, j):
        lo, hi = min(i, j), max(i, j)
        yield Acquire(self._locks[lo])
        yield Acquire(self._locks[hi])
        yield Release(self._locks[hi])
        yield Release(self._locks[lo])
