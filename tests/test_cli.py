"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["process"])
        assert args.n == 16
        assert args.beta == 1.0
        assert args.seed == 1


class TestCommands:
    def test_process(self, capsys):
        assert main(["process", "--n", "8", "--prefill", "2000", "--steps", "2000"]) == 0
        out = capsys.readouterr().out
        assert "mean_rank" in out
        assert "rank cost over time" in out

    def test_process_with_bias(self, capsys):
        main(
            [
                "process",
                "--n",
                "8",
                "--gamma",
                "0.3",
                "--prefill",
                "2000",
                "--steps",
                "2000",
            ]
        )
        assert "gamma" in capsys.readouterr().out

    def test_divergence(self, capsys):
        main(["divergence", "--n", "8", "--prefill", "4000", "--steps", "4000"])
        out = capsys.readouterr().out
        assert "single-choice max rank" in out
        assert "max top rank over time" in out

    def test_potential(self, capsys):
        main(["potential", "--n", "8", "--steps", "4000"])
        out = capsys.readouterr().out
        assert "Gamma" in out

    def test_throughput(self, capsys):
        main(
            [
                "throughput",
                "--threads",
                "1",
                "2",
                "--ops",
                "40",
                "--prefill",
                "400",
                "--contenders",
                "mq1.0",
                "lj",
            ]
        )
        out = capsys.readouterr().out
        assert "ops/Mcycle" in out
        assert "mq1.0" in out

    def test_throughput_unknown_contender(self):
        with pytest.raises(SystemExit):
            main(["throughput", "--threads", "1", "--ops", "5", "--contenders", "zzz"])

    def test_rank(self, capsys):
        main(
            [
                "rank",
                "--betas",
                "1.0",
                "0.5",
                "--prefill",
                "2000",
                "--ops",
                "100",
                "--threads",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "mean rank" in out
        assert "[log y]" in out

    def test_sssp(self, capsys):
        main(["sssp", "--threads", "1", "2", "--graph-size", "300"])
        out = capsys.readouterr().out
        assert "parallel SSSP" in out

    def test_graph_choice(self, capsys):
        main(["graph-choice", "--n", "12", "--prefill", "1000", "--steps", "1000"])
        out = capsys.readouterr().out
        assert "cycle" in out and "complete" in out

    def test_sweep_vector_backend(self, capsys):
        assert (
            main(
                [
                    "sweep", "--backend", "vector", "--n", "8", "--replicas", "4",
                    "--prefill", "500", "--steps", "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replica sweep" in out
        assert "ops_per_sec" in out

    def test_sweep_both_backends_with_json(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "sweep", "--backend", "both", "--n", "8", "--replicas", "4",
                    "--prefill", "800", "--steps", "1000", "--json", str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out and "ks_p" in out
        import json

        payload = json.loads(path.read_text())
        assert payload[0]["parity_ok"]
        assert payload[0]["vector"]["backend"] == "vector"

    def test_sweep_orchestrated_cache_resume(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cells")
        manifest1 = tmp_path / "m1.json"
        manifest2 = tmp_path / "m2.json"
        argv = [
            "sweep", "--backend", "vector", "--n", "8", "--replicas", "4",
            "--prefill", "400", "--steps", "400", "--betas", "1.0", "0.5",
            "--workers", "2", "--cache-dir", cache_dir,
        ]
        assert main(argv + ["--manifest", str(manifest1)]) == 0
        out1 = capsys.readouterr().out
        assert "cache 0/2 hits" in out1
        assert main(argv + ["--manifest", str(manifest2)]) == 0
        out2 = capsys.readouterr().out
        assert "cache 2/2 hits" in out2

        import json

        m1 = json.loads(manifest1.read_text())
        m2 = json.loads(manifest2.read_text())
        assert m1["cache_misses"] == 2 and m2["cache_hits"] == 2
        assert m2["cache_misses"] == 0 and m2["hit_ratio"] == 1.0
        assert m2["workers"] == 2
        assert m2["grid"] == {"beta": [1.0, 0.5]}

        # Identical tables modulo wall-clock columns: same ranks/rows.
        def stable(out):
            return [
                [f for f in line.split() if "." not in f or "rank" in line]
                for line in out.splitlines()
                if line.strip().startswith("vector")
            ]

        assert "mean_rank" in out1 and stable(out1) == stable(out2)

    def test_sweep_manifest_defaults_next_to_json(self, capsys, tmp_path):
        path = tmp_path / "rows.json"
        assert (
            main(
                [
                    "sweep", "--backend", "vector", "--n", "8", "--replicas", "2",
                    "--prefill", "300", "--steps", "300", "--json", str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "manifest:" in out
        import json

        manifest = json.loads((tmp_path / "rows.json.manifest.json").read_text())
        assert manifest["n_cells"] == 1
        assert manifest["fn"].endswith("sweep_cell_backend")

    def test_sweep_multiple_seeds(self, capsys):
        assert (
            main(
                [
                    "sweep", "--backend", "vector", "--n", "8", "--replicas", "2",
                    "--prefill", "300", "--steps", "300", "--seeds", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count(" vector ") >= 2  # one row per seed cell

    def test_sweep_quarantine_exits_nonzero_with_summary(self, capsys, tmp_path):
        # One cell fails all its attempts; the sweep finishes, archives
        # the surviving rows, and exits 1 with a one-line summary.
        from repro.orchestrate import CellFault, SweepFaultPlan

        plan = SweepFaultPlan(
            (CellFault("raise", seed=1, params={"beta": 0.5}, attempts=(1, 2, 3)),)
        )
        plan_path = plan.save(tmp_path / "plan.json")
        rows_path = tmp_path / "rows.json"
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "sweep", "--backend", "vector", "--n", "8", "--replicas", "2",
                    "--prefill", "300", "--steps", "300", "--betas", "1.0", "0.5",
                    "--seeds", "2", "--retries", "2", "--on-error", "quarantine",
                    "--fault-plan", str(plan_path), "--json", str(rows_path),
                ]
            )
        assert excinfo.value.code == 1
        captured = capsys.readouterr()
        assert "1 cell(s) failed, first:" in captured.err
        assert "InjectedFault" in captured.err
        assert "3 attempt(s)" in captured.err
        # Partial results were still archived, with the hole visible in
        # the manifest's failures section.
        import json

        rows = json.loads(rows_path.read_text())
        assert len(rows) == 3
        manifest = json.loads((tmp_path / "rows.json.manifest.json").read_text())
        assert len(manifest["failures"]) == 1
        assert manifest["failures"][0]["params"]["beta"] == 0.5
        assert manifest["failures"][0]["seed"] == 1
        assert manifest["failures"][0]["attempts"] == 3
        assert manifest["retries"] == 2
        assert "quarantined" in captured.out

    def test_sweep_chaos_completes_with_exact_counters(self, capsys, tmp_path):
        # A SIGKILLed worker plus a transient exception: with retries the
        # 8-cell sweep still completes 8/8 and the manifest records
        # exactly the injected faults.
        from repro.orchestrate import CellFault, SweepFaultPlan

        plan = SweepFaultPlan(
            (
                CellFault(
                    "kill", seed=2, params={"beta": 1.0},
                    once_marker=str(tmp_path / "kill.marker"),
                ),
                CellFault("raise", seed=3, params={"beta": 0.5}),
            )
        )
        plan_path = plan.save(tmp_path / "plan.json")
        manifest_path = tmp_path / "chaos.manifest.json"
        assert (
            main(
                [
                    "sweep", "--backend", "vector", "--n", "8", "--replicas", "2",
                    "--prefill", "300", "--steps", "300", "--betas", "1.0", "0.5",
                    "--seeds", "4", "--workers", "2", "--retries", "2",
                    "--fault-plan", str(plan_path), "--manifest", str(manifest_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count(" vector ") == 8
        import json

        manifest = json.loads(manifest_path.read_text())
        assert manifest["n_cells"] == 8
        assert len(manifest["cells"]) == 8
        assert manifest["failures"] == []
        assert manifest["pool_restarts"] == 1
        assert manifest["retries"] == 1

    def test_sweep_biased_insertion(self, capsys):
        assert (
            main(
                [
                    "sweep", "--backend", "reference", "--n", "8", "--gamma", "0.3",
                    "--replicas", "2", "--prefill", "400", "--steps", "400",
                ]
            )
            == 0
        )
        assert "mean_rank" in capsys.readouterr().out

    def test_chaos(self, capsys):
        assert main(["chaos", "--steps", "400", "--prefill", "800"]) == 0
        out = capsys.readouterr().out
        assert "chaos run under fault injection" in out
        assert "PASS" in out
        assert "all checks passed" in out

    def test_chaos_with_lease_and_both_locking(self, capsys):
        main(
            [
                "chaos",
                "--steps",
                "400",
                "--prefill",
                "800",
                "--delete-locking",
                "both",
                "--lease",
                "100000",
            ]
        )
        out = capsys.readouterr().out
        assert "lease=100000" in out
        assert "PASS" in out

    def test_experiments(self, capsys):
        main(["experiments"])
        out = capsys.readouterr().out
        assert "fig1" in out and "t6-diverge" in out
        assert "ext-chaos" in out

    def test_report_selected(self, capsys):
        main(["report", "--ids", "fig1"])
        out = capsys.readouterr().out
        assert "===== fig1" in out

    def test_report_all(self, capsys):
        main(["report"])
        out = capsys.readouterr().out
        assert "===== fig2" in out


class TestWorkerCommand:
    ARGS = [
        "--backend", "vector", "--n", "8", "--replicas", "2",
        "--prefill", "300", "--steps", "300", "--betas", "1.0", "0.5",
    ]

    def test_single_worker_drains_queue_and_matches_sweep(self, capsys, tmp_path):
        import json

        sweep_rows = tmp_path / "sweep.json"
        assert main(["sweep", *self.ARGS, "--json", str(sweep_rows)]) == 0
        capsys.readouterr()

        worker_rows = tmp_path / "worker.json"
        merged = tmp_path / "merged.json"
        assert (
            main(
                [
                    "worker", *self.ARGS,
                    "--queue-dir", str(tmp_path / "q"),
                    "--lease-ttl", "10", "--worker-id", "w0",
                    "--json", str(worker_rows), "--manifest", str(merged),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "worker w0: claimed 2, committed 2" in out
        assert "merged manifest:" in out

        from repro.orchestrate import strip_volatile

        assert strip_volatile(json.loads(worker_rows.read_text())) == strip_volatile(
            json.loads(sweep_rows.read_text())
        )
        manifest = json.loads(merged.read_text())
        assert manifest["n_cells"] == 2
        assert len(manifest["cells"]) == 2
        assert manifest["takeovers"] == 0
        assert manifest["extra"]["workers"][0]["worker_id"] == "w0"

    def test_second_worker_invocation_resumes_with_cache_hits(self, capsys, tmp_path):
        queue_dir = str(tmp_path / "q")
        base = ["worker", *self.ARGS, "--queue-dir", queue_dir, "--lease-ttl", "10"]
        assert main(base + ["--worker-id", "w0"]) == 0
        capsys.readouterr()
        # The queue is already drained: a late worker claims nothing and
        # reports the same completed table.
        assert main(base + ["--worker-id", "w1"]) == 0
        out = capsys.readouterr().out
        assert "worker w1: claimed 0, committed 0" in out
        assert out.count(" vector ") >= 2

    def test_mismatched_grid_rejected(self, tmp_path):
        from repro.orchestrate import QueueSpecMismatch

        queue_dir = str(tmp_path / "q")
        assert main(
            ["worker", *self.ARGS, "--queue-dir", queue_dir, "--lease-ttl", "10"]
        ) == 0
        with pytest.raises(QueueSpecMismatch):
            main(
                [
                    "worker", *self.ARGS, "--queue-dir", queue_dir,
                    "--lease-ttl", "10", "--seeds", "3",
                ]
            )

    def test_quarantine_exits_nonzero_with_summary(self, capsys, tmp_path):
        from repro.orchestrate import CellFault, SweepFaultPlan

        plan = SweepFaultPlan(
            (CellFault("raise", seed=1, params={"beta": 0.5}, attempts=(1,)),)
        )
        plan_path = plan.save(tmp_path / "plan.json")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "worker", *self.ARGS,
                    "--queue-dir", str(tmp_path / "q"),
                    "--lease-ttl", "10", "--max-attempts", "1",
                    "--fault-plan", str(plan_path), "--worker-id", "w0",
                ]
            )
        assert excinfo.value.code == 1
        captured = capsys.readouterr()
        assert "quarantined=1 cell(s) failed, first:" in captured.err
        assert "InjectedFault" in captured.err
        # The surviving cell's row is still printed.
        assert " vector " in captured.out
