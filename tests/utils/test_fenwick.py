"""Unit and property tests for the Fenwick tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.fenwick import FenwickTree


class TestBasics:
    def test_empty_tree_has_zero_total(self):
        ft = FenwickTree(16)
        assert ft.total == 0
        assert ft.prefix_sum(15) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_zero_size_allowed(self):
        ft = FenwickTree(0)
        assert ft.total == 0

    def test_single_add_and_query(self):
        ft = FenwickTree(8)
        ft.add(3, 1)
        assert ft.prefix_sum(2) == 0
        assert ft.prefix_sum(3) == 1
        assert ft.prefix_sum(7) == 1

    def test_prefix_sum_minus_one_is_zero(self):
        ft = FenwickTree(4)
        ft.add(0, 5)
        assert ft.prefix_sum(-1) == 0

    def test_add_out_of_range_raises(self):
        ft = FenwickTree(4)
        with pytest.raises(IndexError):
            ft.add(4, 1)
        with pytest.raises(IndexError):
            ft.add(-1, 1)

    def test_prefix_sum_out_of_range_raises(self):
        ft = FenwickTree(4)
        with pytest.raises(IndexError):
            ft.prefix_sum(4)

    def test_negative_delta_removes(self):
        ft = FenwickTree(8)
        ft.add(5, 1)
        ft.add(5, -1)
        assert ft.total == 0
        assert ft.prefix_sum(7) == 0

    def test_range_sum(self):
        ft = FenwickTree(10)
        for i in range(10):
            ft.add(i, i)
        assert ft.range_sum(3, 5) == 3 + 4 + 5
        assert ft.range_sum(0, 9) == sum(range(10))
        assert ft.range_sum(5, 3) == 0

    def test_get_single_position(self):
        ft = FenwickTree(6)
        ft.add(2, 7)
        assert ft.get(2) == 7
        assert ft.get(1) == 0

    def test_total_tracks_all_mass(self):
        ft = FenwickTree(8)
        ft.add(1, 3)
        ft.add(7, 4)
        assert ft.total == 7

    def test_repr_mentions_size(self):
        assert "size=8" in repr(FenwickTree(8))
        assert len(FenwickTree(8)) == 8


class TestFindKth:
    def test_find_kth_on_unit_counts(self):
        ft = FenwickTree(16)
        present = [2, 5, 11, 13]
        for p in present:
            ft.add(p, 1)
        for k, expected in enumerate(present, start=1):
            assert ft.find_kth(k) == expected

    def test_find_kth_out_of_mass_raises(self):
        ft = FenwickTree(4)
        ft.add(0, 1)
        with pytest.raises(ValueError):
            ft.find_kth(2)
        with pytest.raises(ValueError):
            ft.find_kth(0)

    def test_find_kth_with_multiplicity(self):
        ft = FenwickTree(4)
        ft.add(1, 3)
        assert ft.find_kth(1) == 1
        assert ft.find_kth(3) == 1


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.integers(-3, 3)),
        max_size=200,
    )
)
def test_matches_naive_array(ops):
    """Property: every prefix sum matches a plain array reference."""
    ft = FenwickTree(64)
    ref = np.zeros(64, dtype=np.int64)
    for idx, delta in ops:
        ft.add(idx, delta)
        ref[idx] += delta
    for q in range(-1, 64):
        assert ft.prefix_sum(q) == ref[: q + 1].sum()
    assert ft.total == ref.sum()


@settings(max_examples=100, deadline=None)
@given(present=st.sets(st.integers(min_value=0, max_value=127), min_size=1, max_size=60))
def test_find_kth_matches_sorted_order(present):
    """Property: find_kth enumerates present indices in sorted order."""
    ft = FenwickTree(128)
    for p in present:
        ft.add(p, 1)
    expected = sorted(present)
    got = [ft.find_kth(k) for k in range(1, len(present) + 1)]
    assert got == expected
