"""Tests for RNG stream management."""

import numpy as np
import pytest

from repro.utils.rngtools import RngStreams, as_generator, spawn_seeds


class TestAsGenerator:
    def test_explicit_none_gives_generator(self):
        """``None`` must be stated explicitly (CLI entropy boundary)."""
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_argument_is_required(self):
        with pytest.raises(TypeError):
            as_generator()  # entropy-by-default footgun removed

    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(99)
        a = as_generator(seq)
        assert isinstance(a, np.random.Generator)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(1, 5)) == 5

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_none_seed_rejected(self):
        """Independent streams from OS entropy are never reproducible."""
        with pytest.raises(ValueError, match="explicit"):
            spawn_seeds(None, 3)

    def test_children_are_deterministic(self):
        a = [g.random() for g in spawn_seeds(42, 3)]
        b = [g.random() for g in spawn_seeds(42, 3)]
        assert a == b

    def test_children_are_distinct(self):
        values = [g.random() for g in spawn_seeds(42, 8)]
        assert len(set(values)) == 8

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_seeds(gen, 2)
        assert len(children) == 2
        assert children[0].random() != children[1].random()


class TestRngStreams:
    def test_same_name_same_stream(self):
        streams = RngStreams(10)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent(self):
        streams = RngStreams(10)
        assert streams.get("a").random() != streams.get("b").random()

    def test_name_isolation_across_registries(self):
        """Requesting extra streams elsewhere must not shift a stream."""
        s1 = RngStreams(5)
        v1 = s1.get("target").random()
        s2 = RngStreams(5)
        s2.get("other")  # extra request before 'target'
        v2 = s2.get("target").random()
        assert v1 == v2

    def test_repr_lists_streams(self):
        streams = RngStreams(0)
        streams.get("x")
        assert "x" in repr(streams)

    def test_none_seed_rejected(self):
        with pytest.raises(ValueError, match="explicit"):
            RngStreams(None)

    def test_seed_argument_is_required(self):
        with pytest.raises(TypeError):
            RngStreams()
