"""Tests for round-robin insertion and the Appendix A reduction."""

import numpy as np
import pytest

from repro.core.round_robin import (
    RoundRobinProcess,
    coupled_virtual_loads,
    virtual_load_history,
)


class TestRoundRobinProcess:
    def test_insertion_is_round_robin(self):
        proc = RoundRobinProcess(4, 100, rng=1)
        proc.prefill(40)
        assert proc.queue_sizes() == [10, 10, 10, 10]
        # Labels in queue q are q, q+4, q+8, ...
        assert proc.top_labels() == [0, 1, 2, 3]

    def test_removal_counts_track_removals(self):
        proc = RoundRobinProcess(4, 100, rng=2)
        proc.prefill(80)
        for _ in range(20):
            proc.remove()
        counts = proc.removal_counts()
        assert counts.sum() == 20
        assert np.all(counts >= 0)

    def test_virtual_gap_matches_counts(self):
        proc = RoundRobinProcess(4, 200, rng=3)
        proc.prefill(200)
        for _ in range(100):
            proc.remove()
        counts = proc.removal_counts()
        assert proc.virtual_gap() == pytest.approx(counts.max() - counts.mean())


class TestReduction:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_exact_coupling_with_two_choice(self, seed):
        """Appendix A: removal counts == two-choice balls-into-bins loads,
        entry for entry, under a shared choice stream."""
        rr, tc = coupled_virtual_loads(8, 4000, 2000, seed=seed)
        assert np.array_equal(rr, tc)
        assert rr.sum() == 2000

    def test_coupling_validation(self):
        with pytest.raises(ValueError):
            coupled_virtual_loads(4, 100, 200)

    def test_gap_stays_small(self):
        """Two-choice gap on virtual bins stays O(log log n)-ish even for
        long runs (heavily-loaded two-choice)."""
        steps, gaps, snaps = virtual_load_history(16, 30000, 15000, seed=5, sample_every=3000)
        assert len(steps) == 5
        assert gaps[-1] < 6.0  # log log 16 ~ 2; generous envelope
        assert snaps[-1].sum() == 15000
