"""Tests for the user-facing MultiQueue data structure."""

import numpy as np
import pytest

from repro.core.multiqueue import MultiQueue
from repro.pqueues import PairingHeap, QueueEmptyError


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiQueue(0)
        with pytest.raises(ValueError):
            MultiQueue(4, beta=1.5)
        with pytest.raises(ValueError):
            MultiQueue(4, insert_probs=np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            MultiQueue(2, insert_probs=np.array([0.9, 0.9]))

    def test_properties(self):
        mq = MultiQueue(4, beta=0.7)
        assert mq.n_queues == 4
        assert mq.beta == 0.7
        assert len(mq) == 0
        assert not mq

    def test_custom_queue_factory(self):
        mq = MultiQueue(2, queue_factory=PairingHeap, rng=1)
        assert all(isinstance(q, PairingHeap) for q in mq.queues)


class TestOperations:
    def test_insert_returns_valid_queue_index(self):
        mq = MultiQueue(4, rng=1)
        idx = mq.insert(5)
        assert 0 <= idx < 4
        assert len(mq) == 1

    def test_delete_min_empty_raises(self):
        with pytest.raises(QueueEmptyError):
            MultiQueue(4, rng=1).delete_min()

    def test_insert_then_delete_returns_inserted(self):
        mq = MultiQueue(4, rng=2)
        mq.insert(42, "payload")
        entry = mq.delete_min()
        assert entry.priority == 42
        assert entry.item == "payload"
        assert len(mq) == 0

    def test_drains_all_elements(self):
        mq = MultiQueue(8, rng=3)
        values = list(range(100))
        for v in values:
            mq.insert(v)
        out = sorted(mq.delete_min().priority for _ in range(100))
        assert out == values
        assert len(mq) == 0

    def test_delete_min_traced_reports_queue(self):
        mq = MultiQueue(4, rng=4)
        mq.insert(1)
        entry, queue_idx = mq.delete_min_traced()
        assert entry.priority == 1
        assert 0 <= queue_idx < 4

    def test_peek_best_is_global_min(self):
        mq = MultiQueue(8, rng=5)
        for v in (9, 4, 7, 2, 8):
            mq.insert(v)
        assert mq.peek_best().priority == 2
        assert len(mq) == 5  # non-destructive

    def test_peek_best_empty_raises(self):
        with pytest.raises(QueueEmptyError):
            MultiQueue(2, rng=0).peek_best()

    def test_queue_sizes_and_top_entries(self):
        mq = MultiQueue(3, rng=6)
        for v in range(30):
            mq.insert(v)
        sizes = mq.queue_sizes()
        assert sum(sizes) == 30
        tops = mq.top_entries()
        assert len(tops) == 3
        for top, size in zip(tops, sizes):
            assert (top is None) == (size == 0)

    def test_progresses_when_nearly_empty(self):
        """A single element among many queues is still found (fallback scan)."""
        mq = MultiQueue(64, beta=1.0, rng=7)
        mq.insert(5)
        assert mq.delete_min().priority == 5

    def test_relaxation_quality_two_choice(self):
        """Mean rank error stays O(n_queues) on a big drain."""
        mq = MultiQueue(8, beta=1.0, rng=8)
        n = 4000
        perm = np.random.default_rng(0).permutation(n)
        for v in perm:
            mq.insert(int(v))
        total_rank = 0
        present = sorted(range(n))
        for _ in range(n):
            got = mq.delete_min().priority
            total_rank += present.index(got) + 1
            present.remove(got)
        mean_rank = total_rank / n
        assert mean_rank < 8 * 8  # generous c * n envelope

    def test_biased_insertion_prefers_hot_queues(self):
        pi = np.array([0.7, 0.1, 0.1, 0.1])
        mq = MultiQueue(4, insert_probs=pi, rng=9)
        for v in range(2000):
            mq.insert(v)
        sizes = mq.queue_sizes()
        assert sizes[0] > 1000  # ~1400 expected

    def test_deterministic_given_seed(self):
        def run():
            mq = MultiQueue(4, beta=0.5, rng=11)
            for v in range(50):
                mq.insert(v)
            return [mq.delete_min().priority for _ in range(50)]

        assert run() == run()

    def test_repr(self):
        mq = MultiQueue(4, rng=1)
        assert "n_queues=4" in repr(mq)

    def test_insert_many_and_delete_many(self):
        mq = MultiQueue(4, rng=12)
        mq.insert_many(range(20))
        assert len(mq) == 20
        out = mq.delete_min_many(5)
        assert len(out) == 5
        assert len(mq) == 15

    def test_delete_many_stops_at_empty(self):
        mq = MultiQueue(4, rng=13)
        mq.insert_many([1, 2])
        out = mq.delete_min_many(10)
        assert sorted(e.priority for e in out) == [1, 2]
        assert len(mq) == 0

    def test_delete_many_validation(self):
        with pytest.raises(ValueError):
            MultiQueue(2, rng=0).delete_min_many(-1)
