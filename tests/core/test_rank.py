"""Tests for the RankOracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rank import RankOracle


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RankOracle(0)

    def test_insert_and_rank(self):
        oracle = RankOracle(10)
        for label in (2, 5, 7):
            oracle.insert(label)
        assert oracle.rank(2) == 1
        assert oracle.rank(5) == 2
        assert oracle.rank(7) == 3

    def test_double_insert_rejected(self):
        oracle = RankOracle(4)
        oracle.insert(1)
        with pytest.raises(ValueError):
            oracle.insert(1)

    def test_insert_beyond_capacity_raises_value_error(self):
        # Regression: exceeding the label universe used to surface as an
        # opaque IndexError from the Fenwick layer; it must be a clear
        # ValueError naming the capacity.
        oracle = RankOracle(4)
        for label in range(4):
            oracle.insert(label)
        with pytest.raises(ValueError, match=r"\[0, 4\)"):
            oracle.insert(4)

    def test_negative_label_rejected(self):
        oracle = RankOracle(4)
        with pytest.raises(ValueError, match="outside"):
            oracle.insert(-1)

    def test_rank_of_absent_label_raises(self):
        oracle = RankOracle(4)
        with pytest.raises(KeyError):
            oracle.rank(2)

    def test_remove_returns_rank_and_frees(self):
        oracle = RankOracle(10)
        for label in (1, 4, 8):
            oracle.insert(label)
        assert oracle.remove(4) == 2
        assert oracle.rank(8) == 2
        oracle.insert(4)  # re-insertion allowed after removal
        assert oracle.rank(4) == 2

    def test_contains(self):
        oracle = RankOracle(4)
        oracle.insert(3)
        assert 3 in oracle
        assert 1 not in oracle

    def test_rank_of_value_counts_at_most(self):
        oracle = RankOracle(10)
        for label in (2, 4, 6):
            oracle.insert(label)
        assert oracle.rank_of_value(5) == 2
        assert oracle.rank_of_value(1) == 0

    def test_kth_smallest_and_min(self):
        oracle = RankOracle(16)
        for label in (9, 3, 12):
            oracle.insert(label)
        assert oracle.min_label() == 3
        assert oracle.kth_smallest(2) == 9
        assert oracle.kth_smallest(3) == 12

    def test_min_on_empty_raises(self):
        with pytest.raises(LookupError):
            RankOracle(4).min_label()

    def test_present_count(self):
        oracle = RankOracle(8)
        oracle.insert(0)
        oracle.insert(7)
        assert oracle.present_count == 2
        oracle.remove(0)
        assert oracle.present_count == 1

    def test_repr(self):
        assert "capacity=8" in repr(RankOracle(8))


@settings(max_examples=80, deadline=None)
@given(
    labels=st.sets(st.integers(min_value=0, max_value=199), min_size=1, max_size=80),
    probe=st.integers(min_value=0, max_value=79),
)
def test_rank_matches_sorted_position(labels, probe):
    """Property: rank(x) is x's 1-based position in sorted(present)."""
    oracle = RankOracle(200)
    for lab in labels:
        oracle.insert(lab)
    ordered = sorted(labels)
    target = ordered[probe % len(ordered)]
    assert oracle.rank(target) == ordered.index(target) + 1


@settings(max_examples=50, deadline=None)
@given(
    labels=st.lists(
        st.integers(min_value=0, max_value=99), min_size=1, max_size=60, unique=True
    )
)
def test_remove_in_insertion_order_tracks_shrinking_ranks(labels):
    oracle = RankOracle(100)
    for lab in labels:
        oracle.insert(lab)
    present = sorted(labels)
    for lab in labels:
        expected = present.index(lab) + 1
        assert oracle.remove(lab) == expected
        present.remove(lab)
