"""Tests: Monte-Carlo implementations vs the exactly enumerated process."""

from collections import deque

import numpy as np
import pytest

from repro.core.exact import (
    empirical_rank_distribution,
    exact_mean_rank,
    exact_removal_rank_distribution,
    total_variation,
)
from repro.core.policies import RemovalChooser


class TestEnumeration:
    def test_validation(self):
        with pytest.raises(ValueError):
            exact_removal_rank_distribution([], 1)
        with pytest.raises(ValueError):
            exact_removal_rank_distribution([[1], [1]], 1)  # duplicate label
        with pytest.raises(ValueError):
            exact_removal_rank_distribution([[1]], 2)  # too many removals
        with pytest.raises(ValueError):
            exact_removal_rank_distribution([[1]], 1, beta=2.0)

    def test_single_queue_always_rank_one(self):
        """One queue holding sorted labels: every removal is optimal."""
        dists = exact_removal_rank_distribution([[1, 2, 3]], 3, beta=1.0)
        for dist in dists:
            assert dist == {1: pytest.approx(1.0)}

    def test_distributions_normalized(self):
        dists = exact_removal_rank_distribution([[1, 3], [2, 4]], 4, beta=0.6)
        for dist in dists:
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_two_queue_first_step_by_hand(self):
        """Layout [1],[2], beta=1: pairs (with replacement) are
        (0,0),(0,1),(1,0),(1,1), each 1/4.  (0,0)->label1, (0,1)->1,
        (1,0)->1, (1,1)->2.  So rank1 w.p. 3/4, rank2 w.p. 1/4."""
        (first,) = exact_removal_rank_distribution([[1], [2]], 1, beta=1.0)
        assert first[1] == pytest.approx(0.75)
        assert first[2] == pytest.approx(0.25)

    def test_beta_zero_first_step_by_hand(self):
        """Single choice: each queue w.p. 1/2 -> rank 1 or 2 evenly."""
        (first,) = exact_removal_rank_distribution([[1], [2]], 1, beta=0.0)
        assert first[1] == pytest.approx(0.5)
        assert first[2] == pytest.approx(0.5)

    def test_exact_mean_rank(self):
        mean = exact_mean_rank([[1], [2]], 1, beta=1.0)
        assert mean == pytest.approx(1.25)


class TestHelpers:
    def test_empirical_distribution(self):
        dist = empirical_rank_distribution([1, 1, 2, 2])
        assert dist == {1: 0.5, 2: 0.5}
        with pytest.raises(ValueError):
            empirical_rank_distribution([])

    def test_total_variation(self):
        assert total_variation({1: 1.0}, {1: 1.0}) == 0.0
        assert total_variation({1: 1.0}, {2: 1.0}) == 1.0
        assert total_variation({1: 0.5, 2: 0.5}, {1: 1.0}) == pytest.approx(0.5)


def _simulate_layout_removals(layout, removals, beta, reps, seed):
    """Drive the production removal logic over a fixed layout many times
    and collect first-step (and per-step) ranks."""
    per_step = [[] for _ in range(removals)]
    for rep in range(reps):
        chooser = RemovalChooser(len(layout), beta, rng=seed + rep)
        queues = [deque(q) for q in layout]
        for step in range(removals):
            while True:
                two, i, j = chooser.draw()
                if two:
                    qi, qj = queues[i], queues[j]
                    if qi and qj:
                        idx = i if qi[0] <= qj[0] else j
                    elif qi:
                        idx = i
                    elif qj:
                        idx = j
                    else:
                        continue
                else:
                    if queues[i]:
                        idx = i
                    else:
                        continue
                break
            label = queues[idx].popleft()
            present = sorted([label] + [lab for q in queues for lab in q])
            per_step[step].append(present.index(label) + 1)
    return per_step


class TestMonteCarloMatchesExact:
    @pytest.mark.parametrize("beta", [1.0, 0.5, 0.0])
    def test_process_removal_logic_matches_enumeration(self, beta):
        layout = [[1, 4, 5], [2, 6], [3]]
        removals = 3
        reps = 4000
        exact = exact_removal_rank_distribution(layout, removals, beta=beta)
        simulated = _simulate_layout_removals(layout, removals, beta, reps, seed=100)
        for step in range(removals):
            emp = empirical_rank_distribution(simulated[step])
            tv = total_variation(exact[step], emp)
            assert tv < 0.05, f"beta={beta} step={step}: TV={tv:.3f}"

    def test_interleaved_queue_layout(self):
        layout = [[2, 3], [1, 4]]
        exact = exact_removal_rank_distribution(layout, 2, beta=1.0)
        simulated = _simulate_layout_removals(layout, 2, 1.0, 4000, seed=7)
        for step in range(2):
            emp = empirical_rank_distribution(simulated[step])
            assert total_variation(exact[step], emp) < 0.05
