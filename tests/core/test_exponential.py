"""Tests for the exponential process and the Theorem 2 coupling."""

import numpy as np
import pytest

from repro.core.exponential import (
    ExponentialProcess,
    ExponentialTopProcess,
    coupled_removal_costs,
)
from repro.core.policies import biased_insert_probs


class TestGeneration:
    def test_generates_requested_count(self):
        proc = ExponentialProcess(4, 100, rng=1)
        proc.generate(60)
        assert proc.generated == 60
        assert proc.present_count == 60

    def test_capacity_enforced(self):
        proc = ExponentialProcess(4, 50, rng=1)
        proc.generate(50)
        with pytest.raises(RuntimeError):
            proc.generate(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialProcess(0, 10)
        with pytest.raises(ValueError):
            ExponentialProcess(4, 0)
        with pytest.raises(ValueError):
            ExponentialProcess(4, 10, insert_probs=np.array([0.5, 0.5]))

    def test_bin_values_increase_within_bins(self):
        proc = ExponentialProcess(4, 200, rng=2)
        proc.generate(200)
        for bin_ in proc._bins:
            values = [v for v, _r in bin_]
            assert values == sorted(values)

    def test_ranks_are_permutation(self):
        proc = ExponentialProcess(4, 100, rng=3)
        proc.generate(100)
        assignment = proc.bin_assignment()
        assert sorted(r for seq in proc.bin_rank_sequences() for r in seq) == list(range(100))
        assert len(assignment) == 100

    def test_ranks_follow_value_order(self):
        """Global rank order must equal global value order."""
        proc = ExponentialProcess(3, 150, rng=4)
        proc.generate(150)
        pairs = [(v, r) for bin_ in proc._bins for v, r in bin_]
        pairs.sort()
        assert [r for _v, r in pairs] == list(range(150))

    def test_incremental_generation_keeps_increasing_values(self):
        proc = ExponentialProcess(4, 100, rng=5)
        proc.generate(40)
        first_max = max(v for bin_ in proc._bins for v, _ in bin_)
        proc.generate(60)
        later = [v for bin_ in proc._bins for v, r in bin_ if r >= 40]
        assert min(later) > first_max

    def test_top_weights(self):
        proc = ExponentialProcess(4, 40, rng=6)
        proc.generate(40)
        tops = proc.top_weights()
        assert len(tops) == 4
        assert all(t is None or t > 0 for t in tops)


class TestTheorem2Statistics:
    def test_bin_assignment_marginals_uniform(self):
        """Each rank lands in each bin with probability ~1/n (uniform pi)."""
        n, m, reps = 4, 50, 300
        counts = np.zeros(n)
        for s in range(reps):
            proc = ExponentialProcess(n, m, rng=1000 + s)
            proc.generate(m)
            a = proc.bin_assignment()
            counts += np.bincount(a, minlength=n)
        freq = counts / counts.sum()
        assert np.allclose(freq, 1 / n, atol=0.01)

    def test_bin_assignment_respects_bias(self):
        """With biased pi, rank placement frequencies track pi (Thm 2)."""
        n, m, reps = 4, 50, 400
        pi = biased_insert_probs(n, 0.5, pattern="two-point")
        counts = np.zeros(n)
        for s in range(reps):
            proc = ExponentialProcess(n, m, insert_probs=pi, rng=2000 + s)
            proc.generate(m)
            counts += np.bincount(proc.bin_assignment(), minlength=n)
        freq = counts / counts.sum()
        assert np.allclose(freq, pi, atol=0.015)

    def test_full_layout_distribution_matches_product_law(self):
        """Theorem 2's strongest form: the entire layout (which bin holds
        each rank) is distributed as independent pi-draws, so each of the
        n^m layouts has probability prod_r pi_{bin(r)}.  Compare the
        empirical layout distribution against the exact product law."""
        n, m, reps = 2, 4, 6000
        counts = {}
        for s in range(reps):
            proc = ExponentialProcess(n, m, rng=50_000 + s)
            proc.generate(m)
            key = tuple(proc.bin_assignment())
            counts[key] = counts.get(key, 0) + 1
        # Uniform pi: every one of the 16 layouts has probability 1/16.
        tv = 0.5 * sum(
            abs(counts.get(layout, 0) / reps - 1 / 16)
            for layout in [
                (a, b, c, d)
                for a in range(2)
                for b in range(2)
                for c in range(2)
                for d in range(2)
            ]
        )
        assert tv < 0.04

    def test_full_layout_distribution_biased(self):
        """Same, under a biased pi: P(layout) = prod pi_{bin(r)}."""
        n, m, reps = 2, 3, 6000
        pi = np.array([0.35, 0.65])
        counts = {}
        for s in range(reps):
            proc = ExponentialProcess(n, m, insert_probs=pi, rng=80_000 + s)
            proc.generate(m)
            key = tuple(proc.bin_assignment())
            counts[key] = counts.get(key, 0) + 1
        tv = 0.0
        for a in range(2):
            for b in range(2):
                for c in range(2):
                    exact = pi[a] * pi[b] * pi[c]
                    tv += abs(counts.get((a, b, c), 0) / reps - exact)
        assert 0.5 * tv < 0.04

    def test_first_rank_distribution(self):
        """Rank 1 specifically lands in bin j w.p. pi_j."""
        n, reps = 5, 2000
        hits = np.zeros(n)
        for s in range(reps):
            proc = ExponentialProcess(n, 5, rng=3000 + s)
            proc.generate(5)
            hits[proc.bin_assignment()[0]] += 1
        assert np.allclose(hits / reps, 1 / n, atol=0.04)


class TestRemoval:
    def test_remove_pays_positive_rank(self):
        proc = ExponentialProcess(4, 100, rng=7)
        proc.generate(100)
        rec = proc.remove()
        assert 1 <= rec.rank <= 100
        assert proc.present_count == 99

    def test_remove_empty_raises(self):
        proc = ExponentialProcess(4, 10, rng=7)
        with pytest.raises(LookupError):
            proc.remove()

    def test_run_drain(self):
        proc = ExponentialProcess(8, 400, rng=8)
        proc.generate(400)
        trace = proc.run_drain(200)
        assert len(trace) == 200
        assert proc.present_count == 200

    def test_bin_assignment_after_removals_raises(self):
        proc = ExponentialProcess(4, 20, rng=9)
        proc.generate(20)
        proc.remove()
        with pytest.raises(RuntimeError):
            proc.bin_assignment()


class TestCoupling:
    @pytest.mark.parametrize("beta", [1.0, 0.6, 0.2])
    def test_coupled_costs_identical(self, beta):
        """The Theorem 2 coupling: both sides pay the same cost, step by step."""
        orig, expo = coupled_removal_costs(8, 2000, 1000, beta=beta, seed=42)
        assert np.array_equal(orig.ranks, expo.ranks)

    def test_coupled_costs_with_bias(self):
        pi = biased_insert_probs(8, 0.3, pattern="two-point")
        orig, expo = coupled_removal_costs(8, 2000, 800, beta=1.0, insert_probs=pi, seed=7)
        assert np.array_equal(orig.ranks, expo.ranks)

    def test_coupling_validation(self):
        with pytest.raises(ValueError):
            coupled_removal_costs(4, 100, 200)


class TestTopProcess:
    def test_step_advances_one_bin(self):
        proc = ExponentialTopProcess(8, rng=1)
        before = proc.top_weights
        idx = proc.step()
        after = proc.top_weights
        changed = np.flatnonzero(before != after)
        assert list(changed) == [idx]
        assert after[idx] > before[idx]

    def test_run_counts_steps(self):
        proc = ExponentialTopProcess(4, rng=2)
        proc.run(100)
        assert proc.steps == 100

    def test_two_choice_targets_smaller_top(self):
        """With beta=1 the advanced bin is (one of) the two sampled; the
        smaller of the pair — statistically, small tops advance more."""
        proc = ExponentialTopProcess(8, beta=1.0, rng=3)
        hits_of_min = 0
        trials = 400
        for _ in range(trials):
            tops = proc.top_weights
            argmin = int(np.argmin(tops))
            if proc.step() == argmin:
                hits_of_min += 1
        # The global min is picked whenever sampled (prob 1-(7/8)^2~0.23)
        # plus never loses a comparison; uniform would be 1/8 = 0.125.
        assert hits_of_min / trials > 0.18

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialTopProcess(0)
        with pytest.raises(ValueError):
            ExponentialTopProcess(4, insert_probs=np.array([1.0]))
