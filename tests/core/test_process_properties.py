"""Property tests: the instrumented process against a naive reference.

Hypothesis drives the sequential process step by step while the test
maintains its own plain sorted list of present labels; every removal's
reported rank must equal the label's position in that list, and the
queue bookkeeping must stay consistent.
"""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dchoice import DChoiceProcess
from repro.core.process import SequentialProcess
from repro.graphs.choice_process import GraphChoiceProcess
from repro.graphs.generators import cycle_graph


@settings(max_examples=30, deadline=None)
@given(
    n_queues=st.integers(min_value=1, max_value=8),
    beta=st.floats(min_value=0.0, max_value=1.0),
    prefill=st.integers(min_value=5, max_value=60),
    steps=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_ranks_match_naive_reference(n_queues, beta, prefill, steps, seed):
    proc = SequentialProcess(n_queues, prefill + steps, beta=beta, rng=seed)
    proc.prefill(prefill)
    present = list(range(prefill))  # sorted by construction
    next_label = prefill
    for k in range(steps):
        want_insert = k % 2 == 0 or not present
        if want_insert and next_label < prefill + steps:
            proc.insert()
            bisect.insort(present, next_label)
            next_label += 1
        if not present:
            break  # capacity exhausted and drained
        rec = proc.remove()
        idx = bisect.bisect_left(present, rec.label)
        assert present[idx] == rec.label, "removed label must be present"
        assert rec.rank == idx + 1, "reported rank must match sorted position"
        del present[idx]
        assert proc.present_count == len(present)
    assert sum(proc.queue_sizes()) == len(present)


@settings(max_examples=20, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=5),
    prefill=st.integers(min_value=5, max_value=40),
    removals=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_dchoice_ranks_match_reference(d, prefill, removals, seed):
    removals = min(removals, prefill)
    proc = DChoiceProcess(4, prefill, d=d, rng=seed)
    proc.prefill(prefill)
    present = list(range(prefill))
    for _ in range(removals):
        rec = proc.remove()
        idx = bisect.bisect_left(present, rec.label)
        assert present[idx] == rec.label
        assert rec.rank == idx + 1
        del present[idx]


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=10),
    prefill=st.integers(min_value=5, max_value=40),
    removals=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_graph_choice_ranks_match_reference(n, prefill, removals, seed):
    removals = min(removals, prefill)
    proc = GraphChoiceProcess(cycle_graph(n), prefill, rng=seed)
    proc.prefill(prefill)
    present = list(range(prefill))
    for _ in range(removals):
        rec = proc.remove()
        idx = bisect.bisect_left(present, rec.label)
        assert present[idx] == rec.label
        assert rec.rank == idx + 1
        del present[idx]


@settings(max_examples=25, deadline=None)
@given(
    n_queues=st.integers(min_value=1, max_value=8),
    prefill=st.integers(min_value=2, max_value=50),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_full_drain_removes_every_label_once(n_queues, prefill, seed):
    proc = SequentialProcess(n_queues, prefill, beta=1.0, rng=seed)
    proc.prefill(prefill)
    labels = [proc.remove().label for _ in range(prefill)]
    assert sorted(labels) == list(range(prefill))
    assert proc.present_count == 0


@settings(max_examples=25, deadline=None)
@given(
    n_queues=st.integers(min_value=1, max_value=6),
    prefill=st.integers(min_value=2, max_value=50),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_labels_within_queue_removed_in_fifo_order(n_queues, prefill, seed):
    """Within each queue, labels leave in increasing (insertion) order."""
    proc = SequentialProcess(n_queues, prefill, beta=1.0, rng=seed)
    proc.prefill(prefill)
    last_from_queue = {}
    for _ in range(prefill):
        rec = proc.remove()
        if rec.queue in last_from_queue:
            assert rec.label > last_from_queue[rec.queue]
        last_from_queue[rec.queue] = rec.label
