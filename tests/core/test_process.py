"""Tests for the instrumented sequential (1+beta) process."""

import numpy as np
import pytest

from repro.core.policies import biased_insert_probs
from repro.core.process import SequentialProcess


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialProcess(0, 100)
        with pytest.raises(ValueError):
            SequentialProcess(4, 0)
        with pytest.raises(ValueError):
            SequentialProcess(4, 100, insert_probs=np.array([0.5, 0.5]))


class TestInsertRemove:
    def test_prefill_counts(self):
        proc = SequentialProcess(4, 100, rng=1)
        proc.prefill(50)
        assert proc.present_count == 50
        assert proc.labels_inserted == 50
        assert sum(proc.queue_sizes()) == 50

    def test_capacity_exhaustion(self):
        proc = SequentialProcess(2, 10, rng=1)
        proc.prefill(10)
        with pytest.raises(RuntimeError):
            proc.insert()

    def test_remove_from_empty_raises(self):
        with pytest.raises(LookupError):
            SequentialProcess(2, 10, rng=1).remove()

    def test_removal_record_fields(self):
        proc = SequentialProcess(4, 100, rng=2)
        proc.prefill(20)
        rec = proc.remove()
        assert rec.step == 0
        assert 1 <= rec.rank <= 20
        assert 0 <= rec.queue < 4
        assert 0 <= rec.label < 20
        assert proc.present_count == 19
        assert proc.removal_steps == 1

    def test_beta_one_records_two_choice(self):
        proc = SequentialProcess(4, 100, beta=1.0, rng=3)
        proc.prefill(40)
        assert all(proc.remove().two_choice for _ in range(20))

    def test_beta_zero_records_single_choice(self):
        proc = SequentialProcess(4, 100, beta=0.0, rng=3)
        proc.prefill(40)
        assert not any(proc.remove().two_choice for _ in range(20))

    def test_removed_label_comes_from_reported_queue(self):
        proc = SequentialProcess(4, 200, rng=4)
        proc.prefill(100)
        tops_before = proc.top_labels()
        rec = proc.remove()
        assert rec.label == tops_before[rec.queue]

    def test_two_choice_removes_better_of_observed_tops(self):
        """Over many steps, each removal equals the min of the tops of
        the two queues it could have seen — verified via full drains."""
        proc = SequentialProcess(2, 40, beta=1.0, rng=5)
        proc.prefill(40)
        prev = -1
        # With n=2 and both queues nonempty, two-choice hits both queues
        # with prob 1/2 and single queue with prob 1/2 each; removed
        # labels are always one of the two tops.
        for _ in range(30):
            tops = [t for t in proc.top_labels() if t is not None]
            rec = proc.remove()
            assert rec.label in tops
            prev = rec.label

    def test_top_ranks_max_and_validation(self):
        proc = SequentialProcess(4, 100, rng=6)
        proc.prefill(40)
        ranks = proc.top_ranks()
        assert len(ranks) == sum(1 for q in proc.queue_sizes() if q > 0)
        assert min(ranks) == 1  # some queue holds the global minimum
        assert proc.max_top_rank() == max(ranks)

    def test_max_top_rank_empty_raises(self):
        with pytest.raises(LookupError):
            SequentialProcess(2, 10, rng=0).max_top_rank()


class TestRunModes:
    def test_prefill_drain_length(self):
        proc = SequentialProcess(4, 1000, rng=7)
        trace = proc.run_prefill_drain(500, 200)
        assert len(trace) == 200
        assert proc.present_count == 300

    def test_prefill_drain_default_half(self):
        proc = SequentialProcess(4, 1000, rng=7)
        trace = proc.run_prefill_drain(400)
        assert len(trace) == 200

    def test_prefill_drain_validation(self):
        proc = SequentialProcess(4, 1000, rng=7)
        with pytest.raises(ValueError):
            proc.run_prefill_drain(100, 200)

    def test_steady_state_conserves_population(self):
        proc = SequentialProcess(4, 5000, rng=8)
        trace = proc.run_steady_state(1000, 2000)
        assert len(trace) == 2000
        assert proc.present_count == 1000

    def test_steady_state_sampled(self):
        proc = SequentialProcess(4, 5000, rng=9)
        run = proc.run_steady_state_sampled(1000, 2000, sample_every=500)
        assert len(run.sample_steps) == 4
        assert list(run.sample_steps) == [500, 1000, 1500, 2000]
        assert np.all(run.max_top_ranks >= run.mean_top_ranks)
        assert np.all(run.max_top_ranks >= 1)

    def test_sample_every_validation(self):
        proc = SequentialProcess(4, 5000, rng=9)
        with pytest.raises(ValueError):
            proc.run_steady_state_sampled(10, 10, sample_every=0)

    def test_deterministic_given_seed(self):
        t1 = SequentialProcess(8, 4000, beta=0.6, rng=10).run_steady_state(1000, 1000)
        t2 = SequentialProcess(8, 4000, beta=0.6, rng=10).run_steady_state(1000, 1000)
        assert np.array_equal(t1.ranks, t2.ranks)

    def test_no_empty_redraws_with_big_buffer(self):
        proc = SequentialProcess(8, 20000, rng=11)
        proc.run_steady_state(8000, 4000)
        assert proc.empty_redraws == 0


class TestStatisticalBehaviour:
    def test_two_choice_mean_rank_is_order_n(self):
        """Theorem 1 sanity: mean rank ~ c*n with small c for beta=1."""
        n = 16
        proc = SequentialProcess(n, 40000, beta=1.0, rng=12)
        trace = proc.run_steady_state(10000, 10000)
        assert trace.mean_rank() < 2.0 * n

    def test_biased_insertion_keeps_bounded_ranks(self):
        n = 16
        pi = biased_insert_probs(n, 0.3, pattern="two-point")
        proc = SequentialProcess(n, 40000, beta=1.0, insert_probs=pi, rng=13)
        trace = proc.run_steady_state(10000, 10000)
        assert trace.mean_rank() < 3.0 * n

    def test_smaller_beta_costs_more(self):
        n = 8
        mean_by_beta = {}
        for beta in (1.0, 0.3):
            proc = SequentialProcess(n, 30000, beta=beta, rng=14)
            mean_by_beta[beta] = proc.run_steady_state(8000, 8000).mean_rank()
        assert mean_by_beta[0.3] > mean_by_beta[1.0]

    def test_repr(self):
        proc = SequentialProcess(4, 100, rng=1)
        assert "n=4" in repr(proc)
