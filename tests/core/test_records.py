"""Tests for RemovalRecord / RankTrace / SampledRun."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import RankTrace, RemovalRecord


class TestRemovalRecord:
    def test_fields(self):
        r = RemovalRecord(step=3, label=17, rank=2, queue=1, two_choice=True)
        assert (r.step, r.label, r.rank, r.queue, r.two_choice) == (3, 17, 2, 1, True)

    def test_frozen(self):
        r = RemovalRecord(0, 0, 1, 0, False)
        with pytest.raises(AttributeError):
            r.rank = 5


class TestRankTrace:
    def test_empty_raises_on_stats(self):
        t = RankTrace()
        with pytest.raises(ValueError):
            t.mean_rank()
        with pytest.raises(ValueError):
            t.max_rank()
        with pytest.raises(ValueError):
            t.quantile(0.5)

    def test_append_and_stats(self):
        t = RankTrace()
        for r in (1, 2, 3, 10):
            t.append(r)
        assert t.mean_rank() == 4.0
        assert t.max_rank() == 10
        assert len(t) == 4
        assert t[0] == 1

    def test_extend_and_init(self):
        t = RankTrace([5, 5])
        t.extend([1, 1])
        assert len(t) == 4
        assert t.mean_rank() == 3.0

    def test_ranks_array_caches_and_refreshes(self):
        t = RankTrace([1])
        a = t.ranks
        assert a is t.ranks  # cached
        t.append(2)
        assert len(t.ranks) == 2  # refreshed after append

    def test_windowed_means_shape(self):
        t = RankTrace(range(10))
        w = t.windowed_means(3)
        assert len(w) == 3  # 9 usable elements
        assert w[0] == pytest.approx(1.0)

    def test_windowed_means_empty_when_window_too_large(self):
        t = RankTrace([1, 2])
        assert len(t.windowed_means(5)) == 0

    def test_windowed_maxes(self):
        t = RankTrace([1, 9, 2, 3, 8, 1])
        assert list(t.windowed_maxes(3)) == [9, 8]

    def test_window_validation(self):
        t = RankTrace([1])
        with pytest.raises(ValueError):
            t.windowed_means(0)
        with pytest.raises(ValueError):
            t.windowed_maxes(-1)

    def test_summary_keys(self):
        t = RankTrace([1, 2, 3])
        s = t.summary()
        assert set(s) == {"removals", "mean_rank", "p50_rank", "p99_rank", "max_rank"}
        assert s["removals"] == 3

    def test_merge(self):
        merged = RankTrace.merge([RankTrace([1, 2]), RankTrace([3])])
        assert list(merged.ranks) == [1, 2, 3]

    def test_repr(self):
        assert "empty" in repr(RankTrace())
        assert "n=2" in repr(RankTrace([1, 3]))

    def test_save_and_load_round_trip(self, tmp_path):
        trace = RankTrace([5, 1, 9, 2])
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RankTrace.load(path)
        assert np.array_equal(loaded.ranks, trace.ranks)
        assert loaded.mean_rank() == trace.mean_rank()


@settings(max_examples=50, deadline=None)
@given(ranks=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=200))
def test_stats_match_numpy(ranks):
    t = RankTrace(ranks)
    arr = np.asarray(ranks)
    assert t.mean_rank() == pytest.approx(arr.mean())
    assert t.max_rank() == arr.max()
    assert t.quantile(0.5) == pytest.approx(np.quantile(arr, 0.5))
