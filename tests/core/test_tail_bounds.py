"""Tests for the Lemma 5 tail-striping quantities."""

import numpy as np
import pytest

from repro.core.exponential import ExponentialTopProcess
from repro.core.potential import tail_bin_counts, tail_decay_estimate


class TestTailBinCounts:
    def test_balanced_weights_have_empty_tails(self):
        above, below = tail_bin_counts(np.full(8, 5.0), s=0.1)
        assert (above, below) == (0, 0)

    def test_skewed_weights_counted(self):
        n = 4
        w = np.array([0.0, 0.0, 0.0, 40.0])
        # x = w/n -> [0,0,0,10], mu = 2.5; y = [-2.5,-2.5,-2.5,7.5]
        above, below = tail_bin_counts(w, s=5.0)
        assert above == 1
        assert below == 0
        above2, below2 = tail_bin_counts(w, s=2.0)
        assert above2 == 1
        assert below2 == 3

    def test_s_zero_splits_around_mean(self):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        above, below = tail_bin_counts(w, s=0.0)
        assert above == 2 and below == 2


class TestTailDecay:
    def test_counts_decay_in_s(self):
        """Lemma 5 shape: average tail mass shrinks geometrically in s."""
        proc = ExponentialTopProcess(16, beta=1.0, rng=1)
        s_values = [0.5, 1.0, 2.0, 4.0]
        means = tail_decay_estimate(proc, steps=8000, s_values=s_values)
        # Monotone decreasing and eventually (near) zero.
        assert all(a >= b for a, b in zip(means, means[1:]))
        assert means[-1] < means[0]
        assert means[-1] < 1.0

    def test_single_choice_tails_heavier(self):
        """beta=0 has no balancing force: tails dominate two-choice's."""
        s_values = [1.0, 2.0]
        two = tail_decay_estimate(
            ExponentialTopProcess(16, beta=1.0, rng=2), 8000, s_values
        )
        one = tail_decay_estimate(
            ExponentialTopProcess(16, beta=0.0, rng=2), 8000, s_values
        )
        assert one[0] > two[0]

    def test_validation(self):
        proc = ExponentialTopProcess(4, rng=3)
        with pytest.raises(ValueError):
            tail_decay_estimate(proc, 10, [1.0], sample_every=0)
        with pytest.raises(ValueError):
            tail_decay_estimate(proc, 5, [1.0], sample_every=100)
