"""Tests for the d-choice generalization."""

import numpy as np
import pytest

from repro.core.dchoice import DChoiceProcess
from repro.core.process import SequentialProcess
from repro.core.single_choice import SingleChoiceProcess


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            DChoiceProcess(4, 100, d=0)

    def test_removal_record_shape(self):
        proc = DChoiceProcess(4, 100, d=3, rng=1)
        proc.prefill(50)
        rec = proc.remove()
        assert 1 <= rec.rank <= 50
        assert rec.two_choice  # d >= 2 counts as multi-choice

    def test_d1_flagged_single_choice(self):
        proc = DChoiceProcess(4, 100, d=1, rng=1)
        proc.prefill(50)
        assert not proc.remove().two_choice

    def test_steady_state_runs(self):
        proc = DChoiceProcess(8, 10000, d=4, rng=2)
        trace = proc.run_steady_state(3000, 3000)
        assert len(trace) == 3000
        assert proc.present_count == 3000

    def test_repr(self):
        assert "d=3" in repr(DChoiceProcess(4, 10, d=3))


class TestRankQuality:
    def test_mean_rank_decreases_with_d(self):
        """More choices -> better removals, with diminishing returns."""
        means = {}
        for d in (1, 2, 4, 8):
            proc = DChoiceProcess(16, 30000, d=d, rng=5)
            means[d] = proc.run_steady_state(10000, 8000).mean_rank()
        assert means[1] > means[2] > means[4] > means[8]
        # The big win is d=1 -> d=2 (power of two choices); d=2 -> d=8
        # saves less than d=1 -> d=2 did.
        assert means[1] - means[2] > means[2] - means[8]

    def test_d2_close_to_beta1_process(self):
        """d=2 must match the beta=1 (1+beta) process statistically."""
        d2 = DChoiceProcess(8, 30000, d=2, rng=6).run_steady_state(10000, 8000)
        b1 = SequentialProcess(8, 30000, beta=1.0, rng=7).run_steady_state(10000, 8000)
        assert abs(d2.mean_rank() - b1.mean_rank()) / b1.mean_rank() < 0.15

    def test_d1_close_to_single_choice_process(self):
        d1 = DChoiceProcess(8, 30000, d=1, rng=8).run_steady_state(10000, 8000)
        sc = SingleChoiceProcess(8, 30000, rng=9).run_steady_state(10000, 8000)
        # Both diverge similarly; compare within a loose factor.
        assert 0.5 < d1.mean_rank() / sc.mean_rank() < 2.0

    def test_d2_stays_order_n(self):
        proc = DChoiceProcess(32, 40000, d=2, rng=10)
        trace = proc.run_steady_state(12000, 10000)
        assert trace.mean_rank() < 2.0 * 32
