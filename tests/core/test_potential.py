"""Tests for the Theorem 3 potential functions and drift estimation."""

import math

import numpy as np
import pytest

from repro.core.exponential import ExponentialTopProcess
from repro.core.potential import (
    PotentialTracker,
    gamma_potential,
    phi_potential,
    psi_potential,
    recommended_alpha,
)


class TestPotentialValues:
    def test_balanced_weights_give_n(self):
        """All-equal tops: y == 0, so Phi = Psi = n and Gamma = 2n."""
        w = np.full(8, 5.0)
        assert phi_potential(w, 0.5) == pytest.approx(8.0)
        assert psi_potential(w, 0.5) == pytest.approx(8.0)
        assert gamma_potential(w, 0.5) == pytest.approx(16.0)

    def test_gamma_is_phi_plus_psi(self):
        w = np.array([1.0, 5.0, 9.0, 2.0])
        a = 0.3
        assert gamma_potential(w, a) == pytest.approx(
            phi_potential(w, a) + psi_potential(w, a)
        )

    def test_gamma_at_least_2n(self):
        """AM-GM: exp(x) + exp(-x) >= 2, so Gamma >= 2n always."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            w = rng.exponential(10, size=16)
            assert gamma_potential(w, 0.2) >= 2 * 16 - 1e-9

    def test_imbalance_raises_phi(self):
        n = 8
        balanced = np.full(n, 10.0)
        skewed = balanced.copy()
        skewed[0] += 100.0
        assert phi_potential(skewed, 0.5) > phi_potential(balanced, 0.5)

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            phi_potential(np.array([]), 0.5)

    def test_invariance_under_shift(self):
        """Adding a constant to all tops leaves the potentials unchanged
        (they depend only on deviations from the mean)."""
        w = np.array([3.0, 7.0, 1.0, 9.0])
        assert gamma_potential(w, 0.4) == pytest.approx(gamma_potential(w + 100.0, 0.4))


class TestRecommendedAlpha:
    def test_positive_for_unbiased(self):
        for beta in (0.1, 0.5, 1.0):
            assert recommended_alpha(beta) > 0

    def test_monotone_in_beta(self):
        assert recommended_alpha(1.0) > recommended_alpha(0.5) > recommended_alpha(0.1)

    def test_rejects_gamma_too_large(self):
        """beta = Omega(gamma) is required; gross violations raise."""
        with pytest.raises(ValueError):
            recommended_alpha(0.1, gamma=0.4)

    def test_accepts_small_gamma(self):
        alpha = recommended_alpha(1.0, gamma=0.01)
        assert 0 < alpha < recommended_alpha(1.0)

    def test_satisfies_paper_inequality(self):
        """Check delta <= epsilon = beta/16 with the returned alpha."""
        for beta, gamma in [(1.0, 0.0), (0.5, 0.0), (1.0, 0.02)]:
            c = 2.0
            alpha = recommended_alpha(beta, gamma, c=c)
            x = c * alpha * (1 + gamma) ** 2
            delta = (1 + gamma + x) / (1 - gamma - x) - 1
            assert delta <= beta / 16 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_alpha(0.0)
        with pytest.raises(ValueError):
            recommended_alpha(1.0, gamma=1.0)


class TestTracker:
    def test_series_shapes(self):
        proc = ExponentialTopProcess(8, rng=1)
        tracker = PotentialTracker(proc, alpha=0.05)
        series = tracker.run(1000, sample_every=100)
        assert len(series.steps) == 10
        assert len(series.phi) == 10
        assert np.all(series.gamma == series.phi + series.psi)
        assert series.summary()["samples"] == 10

    def test_default_alpha_from_beta(self):
        proc = ExponentialTopProcess(8, beta=0.5, rng=1)
        tracker = PotentialTracker(proc)
        assert tracker.alpha == pytest.approx(recommended_alpha(0.5))

    def test_sample_every_validation(self):
        proc = ExponentialTopProcess(4, rng=2)
        with pytest.raises(ValueError):
            PotentialTracker(proc, alpha=0.1).run(10, sample_every=0)

    def test_gamma_stays_order_n(self):
        """Theorem 3 empirically: mean Gamma(t)/n bounded by a small
        constant over a long two-choice run."""
        n = 16
        proc = ExponentialTopProcess(n, beta=1.0, rng=3)
        tracker = PotentialTracker(proc, alpha=recommended_alpha(1.0))
        series = tracker.run(20000, sample_every=200)
        assert series.gamma_over_n(n).mean() < 4.0
        assert series.gamma_over_n(n).max() < 8.0

    def test_binned_drift_curve_shape(self):
        """Lemma 2's curve: drift decreases with Gamma and is negative in
        the top bins (with alpha large enough to see excursions)."""
        n = 8
        proc = ExponentialTopProcess(n, beta=1.0, rng=7)
        tracker = PotentialTracker(proc, alpha=0.3)
        centers, means, counts = tracker.binned_drift(40_000, n_bins=6)
        populated = ~np.isnan(means)
        assert counts[populated].sum() == 40_000
        # Top-bin drift below bottom-bin drift (restoring force grows).
        lo = means[populated][0]
        hi = means[populated][-1]
        assert hi < lo
        assert hi < 0.05  # essentially non-positive at large Gamma

    def test_binned_drift_validation(self):
        proc = ExponentialTopProcess(4, rng=8)
        with pytest.raises(ValueError):
            PotentialTracker(proc, alpha=0.1).binned_drift(100, n_bins=1)

    def test_drift_negative_above_threshold_single_choice_contrast(self):
        """Drift estimation runs and reports sane sample counts."""
        n = 8
        proc = ExponentialTopProcess(n, beta=1.0, rng=4)
        tracker = PotentialTracker(proc, alpha=0.05)
        est = tracker.drift_estimate(5000)
        assert est.samples_above + est.samples_below == 5000
        assert est.threshold == pytest.approx(4.0 * n)
        # Below the threshold the potential has room to wander up; the
        # strong claim (negative drift above) is checked at bench scale.
        assert math.isfinite(est.mean_drift_below)
