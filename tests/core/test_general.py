"""Tests for the general-priority-insertion process."""

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.general import GeneralPriorityProcess, priority_sequence
from repro.core.process import SequentialProcess


class TestPrioritySequences:
    @pytest.mark.parametrize(
        "kind", ["increasing", "decreasing", "random", "zipf", "sawtooth"]
    )
    def test_shapes(self, kind):
        seq = priority_sequence(kind, 100, rng=1)
        assert len(seq) == 100

    def test_increasing_and_decreasing(self):
        assert list(priority_sequence("increasing", 4)) == [0, 1, 2, 3]
        assert list(priority_sequence("decreasing", 4)) == [3, 2, 1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            priority_sequence("bogus", 10)
        with pytest.raises(ValueError):
            priority_sequence("random", 0)


class TestProcess:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeneralPriorityProcess([], 4)
        with pytest.raises(ValueError):
            GeneralPriorityProcess([1], 0)
        with pytest.raises(ValueError):
            GeneralPriorityProcess([1, 2], 2, insert_probs=np.array([1.0]))

    def test_insert_exhaustion(self):
        proc = GeneralPriorityProcess([5, 3], 2, rng=1)
        proc.prefill(2)
        with pytest.raises(RuntimeError):
            proc.insert()

    def test_remove_empty(self):
        proc = GeneralPriorityProcess([1], 2, rng=1)
        with pytest.raises(LookupError):
            proc.remove()

    def test_counts(self):
        proc = GeneralPriorityProcess(list(range(10)), 4, rng=2)
        proc.prefill(6)
        assert proc.present_count == 6
        assert proc.inserted == 6
        assert proc.remaining == 4
        proc.remove()
        assert proc.present_count == 5
        assert sum(proc.queue_sizes()) == 5

    def test_run_steady_state_budget(self):
        proc = GeneralPriorityProcess(list(range(10)), 2, rng=3)
        with pytest.raises(ValueError):
            proc.run_steady_state(6, 6)

    def test_repr(self):
        proc = GeneralPriorityProcess([1, 2], 2, rng=0)
        assert "remaining=2" in repr(proc)


class TestRankCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(
        priorities=st.lists(st.integers(0, 50), min_size=4, max_size=60),
        seed=st.integers(0, 10_000),
        beta=st.floats(0.0, 1.0),
    )
    def test_ranks_match_naive_reference(self, priorities, seed, beta):
        proc = GeneralPriorityProcess(priorities, 3, beta=beta, rng=seed)
        half = len(priorities) // 2
        proc.prefill(len(priorities))
        # Reference multiset keyed by (priority, arrival index).
        present = sorted((p, k) for k, p in enumerate(priorities))
        for _ in range(half):
            rec = proc.remove()
            key = (priorities[rec.label], rec.label)
            idx = bisect.bisect_left(present, key)
            assert present[idx] == key
            assert rec.rank == idx + 1
            del present[idx]

    def test_increasing_matches_sequential_process_statistically(self):
        """With increasing priorities the general process is the
        analyzed process; mean ranks must agree closely."""
        m = 30_000
        general = GeneralPriorityProcess(
            priority_sequence("increasing", m), 8, beta=1.0, rng=4
        ).run_steady_state(10_000, 10_000)
        classic = SequentialProcess(8, m, beta=1.0, rng=5).run_steady_state(
            10_000, 10_000
        )
        assert abs(general.mean_rank() - classic.mean_rank()) < 0.2 * classic.mean_rank()


class TestGeneralOrders:
    def test_random_priorities_stay_order_n(self):
        n = 16
        m = 30_000
        proc = GeneralPriorityProcess(
            priority_sequence("random", m, rng=6), n, beta=1.0, rng=7
        )
        trace = proc.run_steady_state(10_000, 10_000)
        assert trace.mean_rank() < 3.0 * n

    def test_decreasing_priorities_lifo_behaviour(self):
        """Every insert beats everything present: the newest element is
        always rank 1, so two-choice removals stay cheap — but the
        *old* elements starve (a real LIFO pathology the rank metric
        exposes via the max)."""
        n = 8
        m = 20_000
        proc = GeneralPriorityProcess(
            priority_sequence("decreasing", m), n, beta=1.0, rng=8
        )
        trace = proc.run_steady_state(8_000, 8_000)
        # Mean rank stays small (fresh elements dominate the tops) ...
        assert trace.mean_rank() < 3.0 * n
        # sanity: ranks are valid
        assert trace.max_rank() <= 8_000 + 1

    def test_zipf_duplicates_handled(self):
        proc = GeneralPriorityProcess(
            priority_sequence("zipf", 20_000, rng=9), 8, beta=1.0, rng=10
        )
        trace = proc.run_steady_state(8_000, 8_000)
        assert trace.mean_rank() < 5.0 * 8
