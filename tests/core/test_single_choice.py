"""Tests for the divergent single-choice process (Theorem 6)."""

import numpy as np
import pytest

from repro.analysis.stats import loglog_slope
from repro.core.process import SequentialProcess
from repro.core.single_choice import SingleChoiceProcess


class TestBasics:
    def test_is_beta_zero_process(self):
        proc = SingleChoiceProcess(8, 1000, rng=1)
        assert proc.beta == 0.0

    def test_divergence_curve_shapes(self):
        proc = SingleChoiceProcess(8, 20000, rng=2)
        run = proc.divergence_curve(4000, 6000, sample_every=1000)
        assert len(run.sample_steps) == 6
        assert len(run.trace) == 6000

    def test_removals_never_use_two_choices(self):
        proc = SingleChoiceProcess(4, 200, rng=3)
        proc.prefill(100)
        assert not any(proc.remove().two_choice for _ in range(50))


class TestDivergence:
    def test_costs_grow_over_time(self):
        """Late-window mean rank clearly exceeds early-window mean."""
        proc = SingleChoiceProcess(8, 60000, rng=4)
        trace = proc.run_steady_state(20000, 20000)
        w = trace.windowed_means(2000)
        assert w[-1] > 2.0 * w[0]

    def test_two_choice_does_not_grow(self):
        """Control: the same experiment with beta=1 stays flat."""
        proc = SequentialProcess(8, 60000, beta=1.0, rng=4)
        trace = proc.run_steady_state(20000, 20000)
        w = trace.windowed_means(2000)
        assert w[-1] < 2.0 * w[0] + 8

    def test_growth_exponent_near_half(self):
        """Theorem 6: max top rank grows ~ sqrt(t); fit the exponent."""
        proc = SingleChoiceProcess(8, 120000, rng=5)
        run = proc.divergence_curve(40000, 40000, sample_every=2000)
        slope, _r2 = loglog_slope(run.sample_steps, run.max_top_ranks, drop_first=3)
        assert 0.2 < slope < 0.9  # clearly growing, roughly sqrt-like

    def test_single_choice_worse_than_two_choice(self):
        kwargs = dict(rng=6)
        single = SingleChoiceProcess(8, 30000, **kwargs).run_steady_state(10000, 10000)
        double = SequentialProcess(8, 30000, beta=1.0, **kwargs).run_steady_state(
            10000, 10000
        )
        assert single.mean_rank() > 3.0 * double.mean_rank()
