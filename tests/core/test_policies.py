"""Tests for insertion distributions and removal choice policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    RemovalChooser,
    biased_insert_probs,
    effective_gamma,
    removal_rank_probabilities,
    uniform_insert_probs,
)


class TestUniform:
    def test_sums_to_one(self):
        pi = uniform_insert_probs(7)
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(pi, 1 / 7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_insert_probs(0)


class TestBiased:
    @pytest.mark.parametrize("pattern", ["two-point", "linear", "random"])
    @pytest.mark.parametrize("gamma", [0.1, 0.3, 0.5])
    def test_respects_gamma_bound(self, pattern, gamma):
        pi = biased_insert_probs(16, gamma, pattern=pattern, rng=3)
        assert pi.sum() == pytest.approx(1.0)
        assert effective_gamma(pi) <= gamma + 1e-9

    def test_gamma_zero_is_uniform(self):
        pi = biased_insert_probs(8, 0.0)
        assert np.allclose(pi, 1 / 8)

    def test_two_point_is_genuinely_biased(self):
        pi = biased_insert_probs(8, 0.4, pattern="two-point")
        assert effective_gamma(pi) == pytest.approx(0.4, rel=1e-6)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            biased_insert_probs(8, 1.0)
        with pytest.raises(ValueError):
            biased_insert_probs(8, -0.1)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            biased_insert_probs(8, 0.2, pattern="bogus")


class TestEffectiveGamma:
    def test_uniform_has_zero_bias(self):
        assert effective_gamma(uniform_insert_probs(5)) == pytest.approx(0.0)

    def test_requires_normalized(self):
        with pytest.raises(ValueError):
            effective_gamma(np.array([0.5, 0.4]))

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            effective_gamma(np.array([1.0, 0.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            effective_gamma(np.array([]))


class TestRemovalRankProbabilities:
    @pytest.mark.parametrize("beta", [0.0, 0.3, 0.5, 1.0])
    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_sums_to_one(self, n, beta):
        p = removal_rank_probabilities(n, beta)
        assert p.sum() == pytest.approx(1.0)

    def test_beta_zero_is_uniform(self):
        p = removal_rank_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_decreasing_in_rank_for_positive_beta(self):
        p = removal_rank_probabilities(16, 0.8)
        assert np.all(np.diff(p) < 0)

    def test_matches_with_replacement_sampling(self):
        """p_i equals the min-of-two-uniform-draws distribution."""
        n = 8
        p = removal_rank_probabilities(n, 1.0)
        # P(min rank == i) for two with-replacement draws.
        expected = [((n - i + 1) ** 2 - (n - i) ** 2) / n**2 for i in range(1, n + 1)]
        assert np.allclose(p, expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            removal_rank_probabilities(0, 0.5)
        with pytest.raises(ValueError):
            removal_rank_probabilities(4, 1.5)


class TestRemovalChooser:
    def test_beta_one_always_two_choices(self):
        chooser = RemovalChooser(8, 1.0, rng=1)
        for _ in range(50):
            two, i, j = chooser.draw()
            assert two and j is not None
            assert 0 <= i < 8 and 0 <= j < 8

    def test_beta_zero_never_two_choices(self):
        chooser = RemovalChooser(8, 0.0, rng=1)
        for _ in range(50):
            two, i, j = chooser.draw()
            assert not two and j is None

    def test_beta_mixing_frequency(self):
        chooser = RemovalChooser(4, 0.3, rng=7)
        draws = [chooser.draw()[0] for _ in range(4000)]
        assert 0.25 < np.mean(draws) < 0.35

    def test_deterministic_given_seed(self):
        a = [RemovalChooser(8, 0.5, rng=9).draw() for _ in range(1)]
        b = [RemovalChooser(8, 0.5, rng=9).draw() for _ in range(1)]
        assert a == b

    def test_choose_insert_queue_uniform_and_weighted(self):
        chooser = RemovalChooser(4, 1.0, rng=2)
        idx = chooser.choose_insert_queue(None)
        assert 0 <= idx < 4
        # Degenerate distribution pins the choice.
        pi = np.array([0.0, 0.0, 1.0, 0.0])
        assert chooser.choose_insert_queue(pi) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RemovalChooser(0, 0.5)
        with pytest.raises(ValueError):
            RemovalChooser(4, -0.1)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    gamma=st.floats(min_value=0.01, max_value=0.6),
)
def test_two_point_bias_always_valid(n, gamma):
    pi = biased_insert_probs(n, gamma, pattern="two-point")
    assert pi.sum() == pytest.approx(1.0)
    assert effective_gamma(pi) <= gamma + 1e-9
