"""Integration tests: the paper's main claims at moderate scale.

Each test exercises multiple subsystems together and checks the
*statistical shape* of a theorem (scaling in n, time-uniformity,
divergence) rather than individual units.  Benchmark-scale versions with
full sweeps live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.analysis.rank_series import time_uniformity
from repro.analysis.stats import loglog_slope
from repro.analysis.theory import avg_rank_bound, envelope_constant, max_rank_bound
from repro.core.exponential import ExponentialTopProcess
from repro.core.policies import biased_insert_probs
from repro.core.potential import PotentialTracker, recommended_alpha
from repro.core.process import SequentialProcess
from repro.core.single_choice import SingleChoiceProcess


class TestTheorem1AverageRank:
    def test_mean_rank_linear_in_n(self):
        """Theorem 1: E[rank] = O(n) for beta=1; the fitted scaling
        exponent across n in {8..64} is ~1."""
        ns = [8, 16, 32, 64]
        means = []
        for n in ns:
            proc = SequentialProcess(n, 40000, beta=1.0, rng=100 + n)
            trace = proc.run_steady_state(12000, 8000)
            means.append(trace.mean_rank())
        slope, r2 = loglog_slope(ns, means)
        assert 0.8 < slope < 1.2
        assert r2 > 0.95

    def test_envelope_constant_small(self):
        """Measured mean rank stays below c * n/beta^2 with small c."""
        rows = []
        for n, beta in [(8, 1.0), (16, 0.5), (32, 1.0), (16, 0.25)]:
            proc = SequentialProcess(n, 40000, beta=beta, rng=7)
            trace = proc.run_steady_state(12000, 8000)
            rows.append((trace.mean_rank(), avg_rank_bound(n, beta)))
        c = envelope_constant([m for m, _ in rows], [b for _, b in rows])
        assert c < 2.0

    def test_time_uniformity(self):
        """Rank cost at late times matches early times (two-choice)."""
        proc = SequentialProcess(16, 80000, beta=1.0, rng=8)
        trace = proc.run_steady_state(20000, 40000)
        report = time_uniformity(trace)
        assert report.is_uniform(tolerance=0.3)


class TestCorollary1MaxRank:
    def test_max_top_rank_within_envelope(self):
        """E[max top rank] <= c * (n/beta) log(n/beta), c modest."""
        measured, bounds = [], []
        for n, beta in [(8, 1.0), (16, 1.0), (32, 1.0), (16, 0.5)]:
            proc = SequentialProcess(n, 40000, beta=beta, rng=200 + n)
            run = proc.run_steady_state_sampled(12000, 8000, sample_every=1000)
            measured.append(float(run.max_top_ranks.mean()))
            bounds.append(max_rank_bound(n, beta))
        c = envelope_constant(measured, bounds)
        assert c < 2.0


class TestBiasRobustness:
    def test_biased_insertions_keep_guarantees(self):
        """With gamma-bounded bias and beta=1, mean rank stays O(n)."""
        n = 16
        for gamma in (0.1, 0.3, 0.5):
            pi = biased_insert_probs(n, gamma, pattern="two-point")
            proc = SequentialProcess(n, 40000, beta=1.0, insert_probs=pi, rng=9)
            trace = proc.run_steady_state(12000, 8000)
            assert trace.mean_rank() < 3.0 * n, f"gamma={gamma}"


class TestTheorem6Divergence:
    def test_single_choice_not_time_uniform(self):
        proc = SingleChoiceProcess(8, 70000, rng=10)
        trace = proc.run_steady_state(30000, 30000)
        report = time_uniformity(trace)
        assert not report.is_uniform(tolerance=0.5)

    def test_growth_is_power_law(self):
        """Seed-averaged max top rank follows a clear power law in t
        (instantaneous maxima are too noisy for a single-run fit); the
        exponent sits in a sqrt-compatible band, far from the flat
        (exponent ~0) two-choice behaviour."""
        curves = []
        for s in range(4):
            proc = SingleChoiceProcess(16, 120000, rng=100 + s)
            run = proc.divergence_curve(50000, 50000, sample_every=5000)
            curves.append(run.max_top_ranks)
        avg = np.mean(curves, axis=0)
        slope, r2 = loglog_slope(run.sample_steps, avg, drop_first=2)
        assert 0.3 < slope < 0.95
        assert r2 > 0.8


class TestTheorem3Potential:
    def test_gamma_bounded_across_betas(self):
        """E[Gamma(t)]/n stays O(1) for the exponential top process."""
        n = 16
        for beta in (1.0, 0.5):
            proc = ExponentialTopProcess(n, beta=beta, rng=12)
            tracker = PotentialTracker(proc, alpha=recommended_alpha(beta))
            series = tracker.run(15000, sample_every=250)
            assert series.gamma_over_n(n).mean() < 4.0, f"beta={beta}"

    def test_supermartingale_drift_above_threshold(self):
        """Lemma 2's shape: conditional drift above ~4n is not positive
        (sampled; uses a larger alpha to make excursions visible)."""
        n = 8
        proc = ExponentialTopProcess(n, beta=1.0, rng=13)
        tracker = PotentialTracker(proc, alpha=0.3)
        est = tracker.drift_estimate(40000, threshold=4.0 * n)
        if est.samples_above > 200:
            assert est.mean_drift_above < 0.05
