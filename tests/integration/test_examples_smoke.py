"""Smoke tests: every example script runs to completion and prints its
headline output.  Run as subprocesses so import side effects and
``__main__`` guards behave exactly as for a user.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart.py": "mean rank of removed elements",
    "dijkstra_sssp.py": "simulated parallel relaxed Dijkstra",
    "branch_and_bound.py": "relaxed (MultiQueue) frontier",
    "rank_profile.py": "time-uniformity",
    "graph_choice.py": "complete (= two-choice)",
    "deadline_scheduler.py": "deadline misses",
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert CASES[script] in result.stdout
