"""Tests for delta-stepping SSSP."""

import numpy as np
import pytest

from repro.graphs.delta_stepping import delta_stepping, suggest_delta
from repro.graphs.dijkstra import dijkstra
from repro.graphs.generators import Graph, cycle_graph, grid_graph, road_network


class TestCorrectness:
    def test_line_graph(self):
        g = Graph(4)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        g.add_edge(2, 3, 4)
        res = delta_stepping(g, 0, delta=3)
        assert list(res.dist) == [0, 2, 5, 9]
        assert res.reachable() == 4

    @pytest.mark.parametrize("delta", [1, 3, 10, 100])
    def test_matches_dijkstra_on_grid(self, delta):
        g = grid_graph(8, 8, max_weight=9, rng=1)
        ref = dijkstra(g, 0)
        res = delta_stepping(g, 0, delta=delta)
        assert np.array_equal(res.dist, ref.dist)

    def test_matches_dijkstra_on_road_network(self):
        g = road_network(900, rng=2)
        ref = dijkstra(g, 0)
        res = delta_stepping(g, 0, delta=suggest_delta(g))
        assert np.array_equal(res.dist, ref.dist)

    def test_unreachable(self):
        g = Graph(3)
        g.add_edge(0, 1, 5)
        res = delta_stepping(g, 0, delta=2)
        assert res.reachable() == 2

    def test_validation(self):
        g = cycle_graph(4)
        with pytest.raises(IndexError):
            delta_stepping(g, 9, delta=1)
        with pytest.raises(ValueError):
            delta_stepping(g, 0, delta=0)


class TestPhaseAccounting:
    def test_phase_sizes_sum_to_relaxations(self):
        g = grid_graph(10, 10, max_weight=9, rng=3)
        res = delta_stepping(g, 0, delta=5)
        assert sum(res.phase_sizes) == res.relaxations
        assert len(res.phase_sizes) == res.phases

    def test_larger_delta_fewer_phases(self):
        """Bigger buckets mean fewer barriers (more parallel slack)."""
        g = road_network(400, max_weight=100, rng=4)
        small = delta_stepping(g, 0, delta=2)
        large = delta_stepping(g, 0, delta=200)
        assert large.phases < small.phases

    def test_larger_delta_more_rework(self):
        """Bigger buckets relax more speculatively (never less work)."""
        g = road_network(400, max_weight=100, rng=5)
        small = delta_stepping(g, 0, delta=2)
        large = delta_stepping(g, 0, delta=10**6)
        assert large.relaxations >= small.relaxations

    def test_parallel_time_estimate_improves_with_p(self):
        g = road_network(400, rng=6)
        res = delta_stepping(g, 0, delta=suggest_delta(g))
        t1 = res.parallel_time_estimate(1)
        t8 = res.parallel_time_estimate(8)
        assert t8 < t1
        # Span lower bound: barriers are irreducible.
        assert t8 >= res.phases

    def test_parallel_time_validation(self):
        g = cycle_graph(4)
        res = delta_stepping(g, 0, delta=1)
        with pytest.raises(ValueError):
            res.parallel_time_estimate(0)

    def test_suggest_delta_positive(self):
        assert suggest_delta(road_network(100, rng=7)) >= 1
        assert suggest_delta(Graph(3)) == 1

    def test_repr(self):
        g = cycle_graph(4)
        assert "delta=1" in repr(delta_stepping(g, 0, delta=1))
