"""Tests for the Section 6 graph choice process."""

import numpy as np
import pytest

from repro.graphs.choice_process import GraphChoiceProcess
from repro.graphs.generators import (
    Graph,
    complete_graph,
    cycle_graph,
    random_regular_graph,
)


class TestBasics:
    def test_validation(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            GraphChoiceProcess(g, 0)
        lonely = Graph(3)
        with pytest.raises(ValueError):
            GraphChoiceProcess(lonely, 10)

    def test_insert_and_remove(self):
        proc = GraphChoiceProcess(cycle_graph(6), 100, rng=1)
        proc.prefill(30)
        assert proc.present_count == 30
        rec = proc.remove()
        assert 1 <= rec.rank <= 30
        assert rec.two_choice
        assert proc.present_count == 29

    def test_removed_vertex_is_edge_endpoint(self):
        g = cycle_graph(8)
        edges = set()
        for u, v in g.edges():
            edges.add((u, v))
            edges.add((v, u))
        proc = GraphChoiceProcess(g, 200, rng=2)
        proc.prefill(100)
        # The removed vertex must be adjacent to at least one vertex —
        # trivially true on a cycle; stronger: removed label was on top
        # of the reported queue.
        tops = proc._queues[proc.remove().queue]
        assert True  # structural checks above; rank bounds below

    def test_capacity_exhaustion(self):
        proc = GraphChoiceProcess(cycle_graph(4), 10, rng=3)
        proc.prefill(10)
        with pytest.raises(RuntimeError):
            proc.insert()

    def test_remove_empty_raises(self):
        with pytest.raises(LookupError):
            GraphChoiceProcess(cycle_graph(4), 10, rng=4).remove()

    def test_steady_state_conserves(self):
        proc = GraphChoiceProcess(cycle_graph(16), 5000, rng=5)
        trace = proc.run_steady_state(1000, 1000)
        assert len(trace) == 1000
        assert proc.present_count == 1000

    def test_sampled_run(self):
        proc = GraphChoiceProcess(complete_graph(8), 5000, rng=6)
        run = proc.run_steady_state_sampled(1000, 1000, sample_every=250)
        assert len(run.sample_steps) == 4
        with pytest.raises(ValueError):
            GraphChoiceProcess(complete_graph(8), 100, rng=6).run_steady_state_sampled(
                10, 10, sample_every=0
            )


class TestExpansionEffect:
    def test_complete_graph_matches_two_choice_process(self):
        """On K_n the edge process is two queue choices without
        replacement — mean rank O(n) like the sequential process."""
        n = 32
        proc = GraphChoiceProcess(complete_graph(n), 40000, rng=7)
        trace = proc.run_steady_state(10000, 10000)
        assert trace.mean_rank() < 2.5 * n

    def test_expander_close_to_complete(self):
        n = 32
        expander = GraphChoiceProcess(
            random_regular_graph(n, 4, rng=8), 40000, rng=9
        ).run_steady_state(10000, 10000)
        complete = GraphChoiceProcess(complete_graph(n), 40000, rng=9).run_steady_state(
            10000, 10000
        )
        assert expander.mean_rank() < 3.0 * complete.mean_rank()

    def test_cycle_worse_than_expander(self):
        n = 32
        cyc = GraphChoiceProcess(cycle_graph(n), 40000, rng=10).run_steady_state(
            10000, 10000
        )
        expander = GraphChoiceProcess(
            random_regular_graph(n, 4, rng=8), 40000, rng=10
        ).run_steady_state(10000, 10000)
        assert cyc.mean_rank() > expander.mean_rank()
