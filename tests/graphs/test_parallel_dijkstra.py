"""Tests for the simulated parallel relaxed Dijkstra."""

import numpy as np
import pytest

from repro.concurrent.klsm import KLSMPQ
from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.graphs.dijkstra import dijkstra
from repro.graphs.generators import grid_graph, road_network
from repro.graphs.parallel_dijkstra import parallel_dijkstra


def _mq(n_queues, beta=1.0):
    def make(engine, rng):
        return ConcurrentMultiQueue(engine, n_queues, beta=beta, rng=rng)

    return make


class TestCorrectness:
    def test_matches_sequential_on_grid(self):
        g = grid_graph(10, 10, max_weight=9, rng=1)
        ref = dijkstra(g, 0)
        res = parallel_dijkstra(g, 0, _mq(8), n_threads=4, seed=2)
        assert np.array_equal(res.dist, ref.dist)

    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_matches_sequential_on_road_network(self, threads):
        g = road_network(900, rng=3)
        ref = dijkstra(g, 0)
        res = parallel_dijkstra(g, 0, _mq(2 * threads), n_threads=threads, seed=4)
        assert np.array_equal(res.dist, ref.dist)

    def test_klsm_model_also_exact(self):
        g = road_network(400, rng=5)
        ref = dijkstra(g, 0)

        def make(engine, rng):
            return KLSMPQ(engine, relaxation=64, rng=rng)

        res = parallel_dijkstra(g, 0, make, n_threads=4, seed=6)
        assert np.array_equal(res.dist, ref.dist)

    def test_validation(self):
        g = grid_graph(3, 3, rng=1)
        with pytest.raises(IndexError):
            parallel_dijkstra(g, 99, _mq(4), 2)
        with pytest.raises(ValueError):
            parallel_dijkstra(g, 0, _mq(4), 0)


class TestPerformanceShape:
    def test_threads_reduce_completion_time(self):
        """More simulated threads finish sooner (the point of relaxation)."""
        g = road_network(1600, rng=7)
        t1 = parallel_dijkstra(g, 0, _mq(2), n_threads=1, seed=8).sim_time
        t8 = parallel_dijkstra(g, 0, _mq(16), n_threads=8, seed=8).sim_time
        assert t8 < 0.6 * t1

    def test_result_counters(self):
        g = grid_graph(8, 8, rng=9)
        res = parallel_dijkstra(g, 0, _mq(4), n_threads=2, seed=10)
        assert res.pops == res.pushes
        assert 0 <= res.wasted_fraction < 1
        assert "threads=2" in repr(res)

    def test_deterministic_given_seed(self):
        g = grid_graph(8, 8, rng=11)
        a = parallel_dijkstra(g, 0, _mq(4), n_threads=3, seed=12)
        b = parallel_dijkstra(g, 0, _mq(4), n_threads=3, seed=12)
        assert a.sim_time == b.sim_time
        assert a.pops == b.pops
