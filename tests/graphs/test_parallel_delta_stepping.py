"""Tests for simulated parallel delta-stepping."""

import numpy as np
import pytest

from repro.graphs.delta_stepping import suggest_delta
from repro.graphs.dijkstra import dijkstra
from repro.graphs.generators import Graph, grid_graph, road_network
from repro.graphs.parallel_delta_stepping import parallel_delta_stepping


class TestCorrectness:
    def test_line_graph(self):
        g = Graph(4)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        g.add_edge(2, 3, 4)
        res = parallel_delta_stepping(g, 0, delta=3, n_threads=2)
        assert list(res.dist) == [0, 2, 5, 9]

    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_matches_dijkstra_on_grid(self, threads):
        g = grid_graph(8, 8, max_weight=9, rng=1)
        ref = dijkstra(g, 0)
        res = parallel_delta_stepping(g, 0, delta=5, n_threads=threads)
        assert np.array_equal(res.dist, ref.dist)

    @pytest.mark.parametrize("delta_mult", [0.5, 1.0, 4.0])
    def test_matches_dijkstra_on_road_network(self, delta_mult):
        g = road_network(600, rng=2)
        ref = dijkstra(g, 0)
        delta = max(1, int(suggest_delta(g) * delta_mult))
        res = parallel_delta_stepping(g, 0, delta=delta, n_threads=4)
        assert np.array_equal(res.dist, ref.dist)

    def test_validation(self):
        g = grid_graph(3, 3, rng=1)
        with pytest.raises(IndexError):
            parallel_delta_stepping(g, 99, delta=1, n_threads=2)
        with pytest.raises(ValueError):
            parallel_delta_stepping(g, 0, delta=0, n_threads=2)
        with pytest.raises(ValueError):
            parallel_delta_stepping(g, 0, delta=1, n_threads=0)


class TestPerformanceShape:
    def test_threads_reduce_completion_time(self):
        g = road_network(1200, rng=3)
        delta = suggest_delta(g)
        t1 = parallel_delta_stepping(g, 0, delta=delta, n_threads=1).sim_time
        t8 = parallel_delta_stepping(g, 0, delta=delta, n_threads=8).sim_time
        assert t8 < 0.8 * t1

    def test_counters_and_repr(self):
        g = grid_graph(6, 6, rng=4)
        res = parallel_delta_stepping(g, 0, delta=5, n_threads=2)
        assert res.phases > 0
        assert res.relaxations > 0
        assert "threads=2" in repr(res)

    def test_deterministic(self):
        g = grid_graph(6, 6, rng=5)
        a = parallel_delta_stepping(g, 0, delta=5, n_threads=3)
        b = parallel_delta_stepping(g, 0, delta=5, n_threads=3)
        assert a.sim_time == b.sim_time
