"""Tests for expansion metrics."""

import numpy as np
import pytest

from repro.graphs.expansion import (
    adjacency_matrix,
    cheeger_bounds,
    edge_expansion_sample,
    normalized_laplacian,
    spectral_gap,
)
from repro.graphs.generators import (
    Graph,
    complete_graph,
    cycle_graph,
    random_regular_graph,
)


class TestMatrices:
    def test_adjacency_symmetric(self):
        g = cycle_graph(6)
        a = adjacency_matrix(g)
        assert np.array_equal(a, a.T)
        assert a.sum() == 2 * g.n_edges

    def test_laplacian_psd_and_zero_eigenvalue(self):
        g = random_regular_graph(12, 4, rng=1)
        lap = normalized_laplacian(g)
        eig = np.linalg.eigvalsh(lap)
        assert eig.min() > -1e-9  # PSD
        assert abs(eig.min()) < 1e-9  # lambda_1 = 0 (connected)

    def test_isolated_vertex_handled(self):
        g = Graph(3)
        g.add_edge(0, 1)
        lap = normalized_laplacian(g)
        assert lap[2, 2] == 0.0


class TestSpectralGap:
    def test_complete_graph_value(self):
        n = 8
        # Normalized Laplacian of K_n has lambda_2 = n/(n-1).
        assert spectral_gap(complete_graph(n)) == pytest.approx(n / (n - 1), rel=1e-6)

    def test_cycle_gap_small(self):
        # lambda_2 of a cycle = 1 - cos(2 pi / n) -> small for big n.
        gap = spectral_gap(cycle_graph(32))
        assert gap == pytest.approx(1 - np.cos(2 * np.pi / 32), rel=1e-6)

    def test_disconnected_gap_zero(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert spectral_gap(g) == pytest.approx(0.0, abs=1e-9)

    def test_expansion_ordering(self):
        """cycle < random 4-regular < complete, as expansion theory says."""
        n = 24
        gaps = {
            "cycle": spectral_gap(cycle_graph(n)),
            "regular": spectral_gap(random_regular_graph(n, 4, rng=2)),
            "complete": spectral_gap(complete_graph(n)),
        }
        assert gaps["cycle"] < gaps["regular"] < gaps["complete"]

    def test_validation(self):
        with pytest.raises(ValueError):
            spectral_gap(Graph(1))


class TestCheegerAndSampling:
    def test_cheeger_bounds_order(self):
        g = random_regular_graph(16, 4, rng=3)
        lo, hi = cheeger_bounds(g)
        assert 0 <= lo <= hi

    def test_sampled_expansion_within_cheeger_range(self):
        """The sampled h(G) upper-estimate must respect Cheeger's lower
        bound (lambda_2/2 <= h)."""
        g = random_regular_graph(20, 4, rng=4)
        lo, _hi = cheeger_bounds(g)
        h_est = edge_expansion_sample(g, cuts=300, rng=5)
        assert h_est >= lo - 1e-9

    def test_cycle_has_tiny_expansion(self):
        h_cycle = edge_expansion_sample(cycle_graph(32), rng=6)
        h_complete = edge_expansion_sample(complete_graph(16), rng=6)
        assert h_cycle < h_complete

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            edge_expansion_sample(Graph(1))
