"""Tests for graph generators."""

import pytest

from repro.graphs.generators import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    random_regular_graph,
    road_network,
    torus_graph,
)


class TestGraph:
    def test_validation(self):
        with pytest.raises(ValueError):
            Graph(0)
        g = Graph(3)
        with pytest.raises(IndexError):
            g.add_edge(0, 5)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, weight=0)

    def test_add_edge_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 2, 7)
        assert (2, 7) in g.adj[0]
        assert (0, 7) in g.adj[2]
        assert g.n_edges == 1
        assert g.degree(0) == 1

    def test_edges_iterator_unique(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert sorted(g.edges()) == [(0, 1), (2, 3)]

    def test_connectivity(self):
        g = Graph(4)
        g.add_edge(0, 1)
        assert not g.is_connected()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert g.is_connected()

    def test_average_degree(self):
        g = cycle_graph(10)
        assert g.average_degree() == pytest.approx(2.0)


class TestGenerators:
    def test_cycle(self):
        g = cycle_graph(8)
        assert g.n_edges == 8
        assert all(g.degree(v) == 2 for v in range(8))
        assert g.is_connected()
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.n_edges == 15
        assert g.is_connected()

    def test_grid(self):
        g = grid_graph(4, 5, rng=1)
        assert g.n_vertices == 20
        assert g.n_edges == 4 * 4 + 3 * 5
        assert g.is_connected()

    def test_torus(self):
        g = torus_graph(4, 4, rng=2)
        assert all(g.degree(v) == 4 for v in range(16))
        assert g.is_connected()
        with pytest.raises(ValueError):
            torus_graph(2, 4)

    def test_random_regular(self):
        g = random_regular_graph(20, 4, rng=3)
        assert all(g.degree(v) == 4 for v in range(20))
        assert g.is_connected()
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)  # odd n*d
        with pytest.raises(ValueError):
            random_regular_graph(4, 5)  # d >= n

    def test_road_network_properties(self):
        g = road_network(1000, rng=4)
        assert g.is_connected()
        assert 2.0 < g.average_degree() < 4.5
        assert all(w > 0 for nbrs in g.adj for _v, w in nbrs)

    def test_road_network_deterministic(self):
        a = road_network(500, rng=5)
        b = road_network(500, rng=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_road_network_validation(self):
        with pytest.raises(ValueError):
            road_network(4)
        with pytest.raises(ValueError):
            road_network(100, removal_fraction=1.0)
