"""Property tests: every SSSP implementation agrees on random graphs.

Hypothesis generates small weighted graphs (connected by construction:
a random spanning chain plus random extra edges); sequential Dijkstra
over two substrates, delta-stepping at two bucket widths, and both
simulated-parallel algorithms must produce identical distance vectors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.graphs.delta_stepping import delta_stepping
from repro.graphs.dijkstra import dijkstra
from repro.graphs.generators import Graph
from repro.graphs.parallel_delta_stepping import parallel_delta_stepping
from repro.graphs.parallel_dijkstra import parallel_dijkstra
from repro.pqueues import BucketQueue, PairingHeap


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    g = Graph(n)
    # Spanning chain over a random permutation guarantees connectivity.
    perm = draw(st.permutations(list(range(n))))
    for a, b in zip(perm, perm[1:]):
        g.add_edge(a, b, draw(st.integers(min_value=1, max_value=20)))
    # Random extra edges (duplicates between pairs are fine: parallel
    # edges just mean two weights between the same endpoints).
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(min_value=1, max_value=20),
            ),
            max_size=12,
        )
    )
    for u, v, w in extra:
        if u != v:
            g.add_edge(u, v, w)
    source = draw(st.integers(0, n - 1))
    return g, source


@settings(max_examples=25, deadline=None)
@given(case=connected_graphs())
def test_sequential_implementations_agree(case):
    g, source = case
    ref = dijkstra(g, source).dist
    assert np.array_equal(dijkstra(g, source, pq_factory=PairingHeap).dist, ref)
    assert np.array_equal(dijkstra(g, source, pq_factory=BucketQueue).dist, ref)
    assert np.array_equal(delta_stepping(g, source, delta=1).dist, ref)
    assert np.array_equal(delta_stepping(g, source, delta=7).dist, ref)
    assert np.array_equal(delta_stepping(g, source, delta=1000).dist, ref)


@settings(max_examples=12, deadline=None)
@given(case=connected_graphs(), seed=st.integers(0, 1000))
def test_simulated_parallel_implementations_agree(case, seed):
    g, source = case
    ref = dijkstra(g, source).dist

    def mq(engine, rng):
        return ConcurrentMultiQueue(engine, 4, beta=0.8, rng=rng)

    par = parallel_dijkstra(g, source, mq, n_threads=2, seed=seed)
    assert np.array_equal(par.dist, ref)
    ds = parallel_delta_stepping(g, source, delta=5, n_threads=2)
    assert np.array_equal(ds.dist, ref)
