"""Tests for sequential Dijkstra across queue substrates."""

import numpy as np
import pytest

from repro.core.multiqueue import MultiQueue
from repro.graphs.dijkstra import _INF, dijkstra
from repro.graphs.generators import Graph, cycle_graph, grid_graph, road_network
from repro.pqueues import QUEUE_FACTORIES, BucketQueue


def _reference_distances(graph, source):
    """Bellman–Ford reference (O(V*E), fine at test sizes)."""
    dist = np.full(graph.n_vertices, _INF, dtype=np.int64)
    dist[source] = 0
    for _ in range(graph.n_vertices - 1):
        changed = False
        for u in range(graph.n_vertices):
            if dist[u] == _INF:
                continue
            for v, w in graph.adj[u]:
                if dist[u] + w < dist[v]:
                    dist[v] = dist[u] + w
                    changed = True
        if not changed:
            break
    return dist


class TestCorrectness:
    def test_line_graph_distances(self):
        g = Graph(4)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        g.add_edge(2, 3, 4)
        res = dijkstra(g, 0)
        assert list(res.dist) == [0, 2, 5, 9]
        assert res.stale_pops == 0
        assert res.reachable() == 4

    def test_unreachable_vertices(self):
        g = Graph(3)
        g.add_edge(0, 1, 1)
        res = dijkstra(g, 0)
        assert res.dist[2] == _INF
        assert res.reachable() == 2

    def test_source_validation(self):
        with pytest.raises(IndexError):
            dijkstra(cycle_graph(4), 9)

    @pytest.mark.parametrize("name", sorted(QUEUE_FACTORIES))
    def test_all_queues_agree_with_reference(self, name):
        g = grid_graph(6, 6, max_weight=9, rng=1)
        ref = _reference_distances(g, 0)
        factory = QUEUE_FACTORIES[name]
        res = dijkstra(g, 0, pq_factory=factory)
        assert np.array_equal(res.dist, ref)

    def test_bucket_queue_monotone_holds(self):
        """Dijkstra satisfies the monotone property BucketQueue needs."""
        g = road_network(400, rng=2)
        res = dijkstra(g, 0, pq_factory=BucketQueue)
        ref = dijkstra(g, 0)
        assert np.array_equal(res.dist, ref.dist)

    def test_relaxed_multiqueue_still_exact(self):
        """With a MultiQueue the algorithm degrades to label-correcting
        but distances stay exact; extra work shows up as stale pops."""
        g = road_network(400, rng=3)
        ref = dijkstra(g, 0)
        mq = MultiQueue(8, beta=1.0, rng=4)
        res = dijkstra(g, 0, pq=mq)
        assert np.array_equal(res.dist, ref.dist)
        assert res.stale_pops >= ref.stale_pops

    def test_work_counters_consistent(self):
        g = grid_graph(8, 8, rng=5)
        res = dijkstra(g, 0)
        assert res.pops == res.pushes  # everything pushed is popped
        assert res.useful_pops == res.pops - res.stale_pops
