"""Tests for rank-series aggregation and time-uniformity reports."""

import numpy as np
import pytest

from repro.analysis.rank_series import aggregate_summaries, time_uniformity
from repro.core.records import RankTrace


class TestAggregate:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_summaries([])

    def test_single_trace(self):
        s = aggregate_summaries([RankTrace([1, 2, 3])])
        assert s["runs"] == 1
        assert s["mean_rank"] == pytest.approx(2.0)
        assert s["mean_rank_std"] == 0.0
        assert s["max_rank_worst"] == 3

    def test_multiple_traces(self):
        s = aggregate_summaries([RankTrace([2, 2]), RankTrace([4, 4])])
        assert s["mean_rank"] == pytest.approx(3.0)
        assert s["mean_rank_std"] == pytest.approx(np.std([2, 4], ddof=1))
        assert s["max_rank_mean"] == pytest.approx(3.0)


class TestTimeUniformity:
    def test_flat_trace_uniform(self):
        trace = RankTrace([5] * 100)
        report = time_uniformity(trace)
        assert report.growth_ratio == pytest.approx(1.0)
        assert report.is_uniform()
        assert "ratio" in repr(report)

    def test_growing_trace_flagged(self):
        trace = RankTrace(list(range(1, 101)))
        report = time_uniformity(trace)
        assert report.growth_ratio > 5
        assert not report.is_uniform()

    def test_validation(self):
        with pytest.raises(ValueError):
            time_uniformity(RankTrace([1] * 100), window_fraction=0.9)
        with pytest.raises(ValueError):
            time_uniformity(RankTrace([1, 2, 3]))
