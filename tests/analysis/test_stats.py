"""Tests for the statistics toolkit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import StreamingMoments, bootstrap_ci, linear_fit, loglog_slope


class TestStreamingMoments:
    def test_basic(self):
        sm = StreamingMoments()
        sm.update_many([1.0, 2.0, 3.0])
        assert sm.mean == pytest.approx(2.0)
        assert sm.variance == pytest.approx(1.0)
        assert sm.std == pytest.approx(1.0)
        assert sm.min == 1.0 and sm.max == 3.0
        assert sm.count == 3

    def test_empty_and_single(self):
        sm = StreamingMoments()
        assert sm.variance == 0.0
        assert sm.stderr == 0.0
        sm.update(5.0)
        assert sm.variance == 0.0

    def test_repr(self):
        sm = StreamingMoments()
        sm.update(1.0)
        assert "n=1" in repr(sm)

    @settings(max_examples=50, deadline=None)
    @given(xs=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_matches_numpy(self, xs):
        sm = StreamingMoments()
        sm.update_many(xs)
        assert sm.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert sm.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-4)


class TestBootstrap:
    def test_interval_contains_point(self):
        data = np.random.default_rng(0).normal(10, 1, size=100)
        point, lo, hi = bootstrap_ci(data, rng=1)
        assert lo <= point <= hi
        assert 9.5 < point < 10.5

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_deterministic(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(data, rng=7) == bootstrap_ci(data, rng=7)


class TestLinearFit:
    def test_exact_line(self):
        x = np.arange(10.0)
        slope, intercept, r2 = linear_fit(x, 3 * x + 2)
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(2.0)
        assert r2 == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [2.0])
        with pytest.raises(ValueError):
            linear_fit([1.0, 1.0], [2.0, 3.0])  # zero variance

    def test_constant_y_r2_one(self):
        _s, _i, r2 = linear_fit([1, 2, 3], [5, 5, 5])
        assert r2 == pytest.approx(1.0)


class TestLogLogSlope:
    def test_power_law_recovered(self):
        x = np.array([10, 100, 1000, 10000], dtype=float)
        y = 3 * x**0.5
        slope, r2 = loglog_slope(x, y)
        assert slope == pytest.approx(0.5)
        assert r2 == pytest.approx(1.0)

    def test_drop_first(self):
        x = np.array([1, 10, 100, 1000], dtype=float)
        y = np.array([999, 10, 100, 1000], dtype=float)  # first point garbage
        slope, _ = loglog_slope(x, y, drop_first=1)
        assert slope == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_slope([0, 1], [1, 2])


class TestRankSummary:
    def test_keys_and_values(self):
        from repro.analysis.stats import rank_summary

        s = rank_summary([1, 2, 3, 4, 100])
        assert set(s) == {"removals", "mean_rank", "p50_rank", "p99_rank", "max_rank"}
        assert s["removals"] == 5
        assert s["mean_rank"] == pytest.approx(22.0)
        assert s["p50_rank"] == pytest.approx(3.0)
        assert s["max_rank"] == 100

    def test_matches_trace_summary(self):
        from repro.analysis.stats import rank_summary
        from repro.core.records import RankTrace

        ranks = list(np.random.default_rng(7).integers(1, 50, size=200))
        assert RankTrace(ranks).summary() == rank_summary(np.asarray(ranks, dtype=np.int64))

    def test_empty_rejected(self):
        from repro.analysis.stats import rank_summary

        with pytest.raises(ValueError):
            rank_summary([])


class TestReplicaRankSummary:
    def test_keys_and_single_replica_sd(self):
        from repro.analysis.stats import replica_rank_summary

        s = replica_rank_summary(np.arange(10, dtype=float).reshape(10, 1))
        assert set(s) == {"mean_rank", "mean_rank_sd", "p99_rank", "max_rank"}
        assert s["mean_rank_sd"] == 0.0

    def test_across_replica_spread(self):
        from repro.analysis.stats import replica_rank_summary

        ranks = np.stack([np.full(50, 1.0), np.full(50, 3.0)], axis=1)
        s = replica_rank_summary(ranks)
        assert s["mean_rank"] == pytest.approx(2.0)
        assert s["mean_rank_sd"] == pytest.approx(np.std([1.0, 3.0], ddof=1))
        assert s["max_rank"] == 3

    def test_rejects_flat_or_empty(self):
        from repro.analysis.stats import replica_rank_summary

        with pytest.raises(ValueError):
            replica_rank_summary(np.arange(5))
        with pytest.raises(ValueError):
            replica_rank_summary(np.empty((0, 3)))


class TestKs2Sample:
    """Golden fixtures + cross-checks for the from-scratch KS machinery."""

    def test_disjoint_samples_distance_one(self):
        from repro.analysis.stats import ks_2sample

        stat, p = ks_2sample([1.0, 2.0, 3.0], [10.0, 11.0, 12.0])
        assert stat == 1.0
        assert p < 0.05

    def test_interleaved_golden(self):
        # F_a jumps at 1 and 3, F_b at 2 and 4: the ECDFs differ by
        # exactly 1/2 just after 1 and just after 3.
        from repro.analysis.stats import ks_2sample

        stat, _ = ks_2sample([1.0, 3.0], [2.0, 4.0])
        assert stat == pytest.approx(0.5)

    def test_tied_golden(self):
        # a = [1,1,2], b = [1,2,2]: at x=1 the ECDFs read 2/3 vs 1/3.
        # The pooled-evaluation implementation must charge the tie once
        # (right-continuous CDFs), not once per duplicate.
        from repro.analysis.stats import ks_2sample

        stat, _ = ks_2sample([1, 1, 2], [1, 2, 2])
        assert stat == pytest.approx(1.0 / 3.0)

    def test_identical_samples(self):
        from repro.analysis.stats import ks_2sample

        stat, p = ks_2sample([1, 2, 3, 4], [1, 2, 3, 4])
        assert stat == 0.0
        assert p == 1.0

    def test_validation(self):
        from repro.analysis.stats import ks_2sample

        with pytest.raises(ValueError):
            ks_2sample([], [1.0])
        with pytest.raises(ValueError):
            ks_2sample([1.0], [])

    def test_matches_scipy(self):
        # scipy is available locally but deliberately not in CI; the
        # from-scratch implementation is what ships, this pins it to the
        # reference when present.
        scipy_stats = pytest.importorskip("scipy.stats")
        from repro.analysis.stats import ks_2sample

        rng = np.random.default_rng(42)
        a = rng.normal(0, 1, size=300)
        b = rng.normal(0.2, 1.1, size=450)
        stat, p = ks_2sample(a, b)
        ref = scipy_stats.ks_2samp(a, b, method="asymp")
        assert stat == pytest.approx(ref.statistic, abs=1e-12)
        assert p == pytest.approx(ref.pvalue, rel=0.05, abs=1e-4)

    def test_discrete_ties_conservative(self):
        # Two samples of the *same* heavily tied law: ties can only
        # deflate the p-value (conservative for parity checks), never
        # inflate it past the continuous case.
        from repro.analysis.stats import ks_2sample

        rng = np.random.default_rng(3)
        a = rng.geometric(0.7, size=500)
        b = rng.geometric(0.7, size=500)
        stat, p = ks_2sample(a, b)
        assert stat < 0.1  # same law: small distance despite ties
        assert 0.0 <= p <= 1.0


class TestKs1Sample:
    def test_uniform_golden(self):
        # sample [0.25, 0.75] vs U[0,1]: D+ = D- = 0.25 by hand.
        from repro.analysis.stats import ks_1sample

        stat, _ = ks_1sample([0.25, 0.75], lambda x: np.clip(x, 0, 1))
        assert stat == pytest.approx(0.25)

    def test_validation(self):
        from repro.analysis.stats import ks_1sample

        with pytest.raises(ValueError):
            ks_1sample([], lambda x: x)

    def test_matches_scipy_continuous(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        from repro.analysis.stats import ks_1sample

        rng = np.random.default_rng(5)
        x = rng.normal(0, 1, size=400)
        stat, p = ks_1sample(x, scipy_stats.norm.cdf)
        ref = scipy_stats.kstest(x, scipy_stats.norm.cdf)
        assert stat == pytest.approx(ref.statistic, abs=1e-12)
        assert p == pytest.approx(ref.pvalue, rel=0.05, abs=1e-4)

    def test_upper_bound_on_discrete_law(self):
        # Against a discrete CDF with tied samples the classical
        # statistic is only an *upper bound*: it charges the full atom
        # at each tie.  The exact discrete distance (computed on the
        # integer grid by ExactRankDistribution.ks_distance) must never
        # exceed it — and on an atom-heavy law the gap is enormous,
        # which is exactly the bug that once reported KS=0.75 for a
        # perfectly converged n=2 simulation.
        from repro.analysis.exact import ExactRankDistribution
        from repro.analysis.stats import ks_1sample

        law = ExactRankDistribution(2, 1.0)
        sample = np.array(
            [law.quantile(p) for p in np.linspace(0.0005, 0.9995, 4000)]
        )
        exact = law.ks_distance(sample)
        classical, _ = ks_1sample(sample, law.cdf)
        assert exact <= classical
        assert exact < 0.01  # the sample is the law's own quantile grid
        assert classical > 0.5  # ~P[R=1] = 0.75: the atom, not the fit


class TestUpdateManyMergesExactly:
    def test_batch_equals_sequential(self):
        from repro.analysis.stats import StreamingMoments

        rng = np.random.default_rng(11)
        xs = rng.normal(50, 20, size=5000)
        seq = StreamingMoments()
        for x in xs:
            seq.update(float(x))
        batched = StreamingMoments()
        for chunk in np.array_split(xs, 7):  # uneven Chan merges
            batched.update_many(chunk)
        assert batched.count == seq.count
        assert batched.mean == pytest.approx(seq.mean, rel=1e-12)
        assert batched.variance == pytest.approx(seq.variance, rel=1e-9)
        assert batched.min == seq.min and batched.max == seq.max

    def test_merge_into_nonempty(self):
        from repro.analysis.stats import StreamingMoments

        sm = StreamingMoments()
        sm.update(1.0)
        sm.update_many([2.0, 3.0, 4.0])
        assert sm.count == 4
        assert sm.mean == pytest.approx(2.5)
        assert sm.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))


class TestBootstrapFastPath:
    def test_mean_fast_path_matches_generic(self):
        # Same rng => same index draws; the vectorized np.mean gather
        # must reproduce the generic per-row loop bit-for-bit (modulo
        # float summation order).
        data = np.random.default_rng(9).exponential(2.0, size=300)
        fast = bootstrap_ci(data, stat=np.mean, n_resamples=500, rng=13)
        generic = bootstrap_ci(
            data, stat=lambda d: np.mean(d), n_resamples=500, rng=13
        )
        assert fast[0] == generic[0]
        assert fast[1] == pytest.approx(generic[1], rel=1e-12)
        assert fast[2] == pytest.approx(generic[2], rel=1e-12)
