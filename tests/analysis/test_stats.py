"""Tests for the statistics toolkit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import StreamingMoments, bootstrap_ci, linear_fit, loglog_slope


class TestStreamingMoments:
    def test_basic(self):
        sm = StreamingMoments()
        sm.update_many([1.0, 2.0, 3.0])
        assert sm.mean == pytest.approx(2.0)
        assert sm.variance == pytest.approx(1.0)
        assert sm.std == pytest.approx(1.0)
        assert sm.min == 1.0 and sm.max == 3.0
        assert sm.count == 3

    def test_empty_and_single(self):
        sm = StreamingMoments()
        assert sm.variance == 0.0
        assert sm.stderr == 0.0
        sm.update(5.0)
        assert sm.variance == 0.0

    def test_repr(self):
        sm = StreamingMoments()
        sm.update(1.0)
        assert "n=1" in repr(sm)

    @settings(max_examples=50, deadline=None)
    @given(xs=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_matches_numpy(self, xs):
        sm = StreamingMoments()
        sm.update_many(xs)
        assert sm.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert sm.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-4)


class TestBootstrap:
    def test_interval_contains_point(self):
        data = np.random.default_rng(0).normal(10, 1, size=100)
        point, lo, hi = bootstrap_ci(data, rng=1)
        assert lo <= point <= hi
        assert 9.5 < point < 10.5

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_deterministic(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(data, rng=7) == bootstrap_ci(data, rng=7)


class TestLinearFit:
    def test_exact_line(self):
        x = np.arange(10.0)
        slope, intercept, r2 = linear_fit(x, 3 * x + 2)
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(2.0)
        assert r2 == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [2.0])
        with pytest.raises(ValueError):
            linear_fit([1.0, 1.0], [2.0, 3.0])  # zero variance

    def test_constant_y_r2_one(self):
        _s, _i, r2 = linear_fit([1, 2, 3], [5, 5, 5])
        assert r2 == pytest.approx(1.0)


class TestLogLogSlope:
    def test_power_law_recovered(self):
        x = np.array([10, 100, 1000, 10000], dtype=float)
        y = 3 * x**0.5
        slope, r2 = loglog_slope(x, y)
        assert slope == pytest.approx(0.5)
        assert r2 == pytest.approx(1.0)

    def test_drop_first(self):
        x = np.array([1, 10, 100, 1000], dtype=float)
        y = np.array([999, 10, 100, 1000], dtype=float)  # first point garbage
        slope, _ = loglog_slope(x, y, drop_first=1)
        assert slope == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_slope([0, 1], [1, 2])


class TestRankSummary:
    def test_keys_and_values(self):
        from repro.analysis.stats import rank_summary

        s = rank_summary([1, 2, 3, 4, 100])
        assert set(s) == {"removals", "mean_rank", "p50_rank", "p99_rank", "max_rank"}
        assert s["removals"] == 5
        assert s["mean_rank"] == pytest.approx(22.0)
        assert s["p50_rank"] == pytest.approx(3.0)
        assert s["max_rank"] == 100

    def test_matches_trace_summary(self):
        from repro.analysis.stats import rank_summary
        from repro.core.records import RankTrace

        ranks = list(np.random.default_rng(7).integers(1, 50, size=200))
        assert RankTrace(ranks).summary() == rank_summary(np.asarray(ranks, dtype=np.int64))

    def test_empty_rejected(self):
        from repro.analysis.stats import rank_summary

        with pytest.raises(ValueError):
            rank_summary([])


class TestReplicaRankSummary:
    def test_keys_and_single_replica_sd(self):
        from repro.analysis.stats import replica_rank_summary

        s = replica_rank_summary(np.arange(10, dtype=float).reshape(10, 1))
        assert set(s) == {"mean_rank", "mean_rank_sd", "p99_rank", "max_rank"}
        assert s["mean_rank_sd"] == 0.0

    def test_across_replica_spread(self):
        from repro.analysis.stats import replica_rank_summary

        ranks = np.stack([np.full(50, 1.0), np.full(50, 3.0)], axis=1)
        s = replica_rank_summary(ranks)
        assert s["mean_rank"] == pytest.approx(2.0)
        assert s["mean_rank_sd"] == pytest.approx(np.std([1.0, 3.0], ddof=1))
        assert s["max_rank"] == 3

    def test_rejects_flat_or_empty(self):
        from repro.analysis.stats import replica_rank_summary

        with pytest.raises(ValueError):
            replica_rank_summary(np.arange(5))
        with pytest.raises(ValueError):
            replica_rank_summary(np.empty((0, 3)))
