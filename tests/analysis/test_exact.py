"""The exact stationary rank oracle: internal consistency + external checks.

Three independent lines of evidence pin the closed form down:

1. the stationary balance equations are satisfied to machine precision
   at every ``(n, beta)`` (``balance_residuals``);
2. the grid, the closed-form moments, and the log-space tail expansion
   are three *different* evaluations of the same law and must agree
   wherever their domains overlap;
3. the repo's own simulator — an implementation of the process that
   shares no code with the oracle — must converge to it (spot-checked
   here at tiny n; the full ladder lives in tests/vector).
"""

import math
import time

import numpy as np
import pytest

from repro.analysis.exact import (
    GRID_N_MAX,
    ExactRankDistribution,
    balance_residuals,
    gap_ratios,
    oracle_row,
    removal_position_law,
)


class TestRemovalLaw:
    @pytest.mark.parametrize("beta", [1.0, 0.5, 0.1, 0.0])
    @pytest.mark.parametrize("n", [1, 2, 7, 256])
    def test_sums_to_one(self, n, beta):
        q = removal_position_law(n, beta)
        assert q.shape == (n,)
        assert q.min() > 0
        assert q.sum() == pytest.approx(1.0, abs=1e-12)

    def test_beta_zero_is_uniform(self):
        assert removal_position_law(5, 0.0) == pytest.approx(np.full(5, 0.2))

    def test_beta_one_two_choice(self):
        # q_j = (2(n-j)+1)/n^2: the ordered-pair-with-replacement law.
        q = removal_position_law(4, 1.0)
        assert q == pytest.approx(np.array([7, 5, 3, 1]) / 16.0)

    def test_gap_ratios_increasing_and_proper(self):
        rho = gap_ratios(256, 0.7)
        assert rho.shape == (255,)
        assert (np.diff(rho) > 0).all()
        assert 0 < rho[0] and rho[-1] < 1

    def test_gap_ratios_improper_at_beta_zero(self):
        # rho_k == 1 exactly: the geometrics are improper, matching the
        # Theorem 6 divergence of the single-choice process.
        assert gap_ratios(64, 0.0) == pytest.approx(np.ones(63))


class TestBalance:
    @pytest.mark.parametrize("beta", [1.0, 0.5, 0.1])
    @pytest.mark.parametrize("n", [2, 3, 8, 64, 256, 1024])
    def test_residuals_machine_zero(self, n, beta):
        res = balance_residuals(n, beta)
        assert np.abs(res).max() < 1e-10


class TestGridAndMoments:
    @pytest.mark.parametrize(
        "n,beta", [(2, 1.0), (3, 0.6), (8, 1.0), (256, 1.0), (256, 0.5), (512, 0.25)]
    )
    def test_grid_matches_closed_form_moments(self, n, beta):
        law = ExactRankDistribution(n, beta)
        r = np.arange(law.support_max + 1, dtype=float)
        pmf = law.pmf(np.arange(law.support_max + 1))
        grid_mean = float((r * pmf).sum())
        grid_var = float((r * r * pmf).sum()) - grid_mean**2
        assert law.grid_deficit < 1e-10
        assert grid_mean == pytest.approx(law.mean(), rel=1e-6)
        assert grid_var == pytest.approx(law.variance(), rel=1e-5)

    def test_pmf_cdf_shapes(self):
        law = ExactRankDistribution(64, 1.0)
        pmf = law.pmf(np.arange(law.support_max + 1))
        assert (pmf >= 0).all()
        assert pmf[0] == 0.0  # ranks are 1-based
        assert pmf.sum() == pytest.approx(1.0, abs=1e-10)
        xs = np.arange(-3, law.support_max + 3)
        cdf = law.cdf(xs)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[0] == 0.0
        assert cdf[-1] == pytest.approx(1.0, abs=1e-10)
        assert law.sf(5) == pytest.approx(1.0 - law.cdf(5))

    def test_quantile_is_cdf_inverse(self):
        law = ExactRankDistribution(128, 0.8)
        for p in (0.1, 0.5, 0.9, 0.99, 0.999):
            r = law.quantile(p)
            assert law.cdf(r) >= p
            assert law.cdf(r - 1) < p

    def test_n1_is_degenerate(self):
        law = ExactRankDistribution(1, 1.0)
        assert law.mean() == 1.0
        assert law.variance() == 0.0
        assert float(law.pmf(1)) == pytest.approx(1.0)

    def test_beta_zero_rejected(self):
        with pytest.raises(ValueError, match="Theorem 6"):
            ExactRankDistribution(16, 0.0)

    def test_grid_refused_beyond_cap(self):
        law = ExactRankDistribution(GRID_N_MAX + 1, 1.0)
        with pytest.raises(ValueError, match="GRID_N_MAX"):
            law.cdf(10)
        # ... but the large-n API still works.
        assert law.mean() > 0
        assert law.std() > 0


class TestTailExpansion:
    @pytest.mark.parametrize("n,beta", [(512, 1.0), (512, 0.5), (256, 0.25)])
    def test_matches_grid_in_deep_tail(self, n, beta):
        law = ExactRankDistribution(n, beta)
        m, s = law.mean(), law.std()
        for mult in (6, 8, 10):
            x = int(m + mult * s)
            grid = float(law.sf(x))
            if grid <= 0:
                continue
            assert law.logsf_tail(x) == pytest.approx(math.log(grid), abs=1e-2)

    def test_shallow_query_raises(self):
        law = ExactRankDistribution(512, 1.0)
        with pytest.raises(ValueError, match="too central"):
            law.logsf_tail(int(law.mean()))

    def test_quantile_tail_matches_grid(self):
        law = ExactRankDistribution(2048, 1.0)
        for p in (0.999, 0.9999):
            assert abs(law.quantile_tail(p) - law.quantile(p)) <= 2

    def test_quantile_tail_rejects_central_p(self):
        law = ExactRankDistribution(512, 1.0)
        with pytest.raises(ValueError, match="tail percentiles"):
            law.quantile_tail(0.5)

    def test_huge_n_is_instant(self):
        # The acceptance criterion: closed-form + tail queries at
        # n = 65536 complete in well under a second.
        start = time.perf_counter()
        law = ExactRankDistribution(65536, 1.0)
        m, s = law.mean(), law.std()
        p999 = law.quantile_tail(0.999)
        deep = law.logsf_tail(int(m + 12 * s))
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
        assert p999 > m
        assert deep < -10
        # Sanity against the infinite-n intuition: mean rank grows
        # linearly in n for fixed beta, far beyond the grid's reach.
        assert 0.2 * 65536 < m < 2.0 * 65536

    def test_sf_tail_underflow_is_zero(self):
        law = ExactRankDistribution(256, 1.0)
        # Deep enough that rho**x underflows double precision entirely.
        assert law.sf_tail(10_000_000) == 0.0


class TestSimulatorAgreement:
    @pytest.mark.parametrize("n,beta", [(2, 1.0), (3, 0.7), (4, 0.5)])
    def test_tiny_n_simulation_converges_to_oracle(self, n, beta):
        # The repo's reference/vector process shares no code with the
        # oracle; long steady-state runs at tiny n are a sharp check of
        # the whole reduction (gap chain, product-geometric law, q_j).
        from repro.vector.sweep import run_vector_backend

        law = ExactRankDistribution(n, beta)
        run = run_vector_backend(
            n, beta, prefill=256 * n, steps=30_000, replicas=16, seed=11
        )
        sample = run.ranks[5_000:].reshape(-1)  # drop burn-in
        assert law.ks_distance(sample) < 0.01
        assert float(sample.mean()) == pytest.approx(law.mean(), rel=0.02)


class TestOracleRow:
    def test_normal_case(self):
        row = oracle_row(64, 1.0, [1, 2, 3, 5, 80])
        assert row["oracle_mean"] > 0
        assert 0 <= row["oracle_ks"] <= 1
        assert row["oracle_mean_err"] >= 0

    def test_out_of_model_rows_are_none(self):
        for kwargs in (
            dict(n=64, beta=0.0, ranks=[1, 2]),
            dict(n=64, beta=1.0, ranks=[1, 2], gamma=0.25),
            dict(n=GRID_N_MAX + 1, beta=1.0, ranks=[1, 2]),
        ):
            row = oracle_row(**kwargs)
            assert row == {
                "oracle_mean": None,
                "oracle_ks": None,
                "oracle_mean_err": None,
            }

    def test_empty_sample_keeps_mean(self):
        row = oracle_row(64, 1.0, [])
        assert row["oracle_mean"] > 0
        assert row["oracle_ks"] is None
        assert row["oracle_mean_err"] is None
