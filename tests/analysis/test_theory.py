"""Tests for the theory-bound helpers."""

import math

import numpy as np
import pytest

from repro.analysis.theory import (
    avg_rank_bound,
    divergence_prediction,
    envelope_constant,
    fit_scaling_exponent,
    max_rank_bound,
)


class TestBounds:
    def test_avg_rank_bound_values(self):
        assert avg_rank_bound(8, 1.0) == 8.0
        assert avg_rank_bound(8, 0.5) == 32.0

    def test_avg_rank_validation(self):
        with pytest.raises(ValueError):
            avg_rank_bound(0, 1.0)
        with pytest.raises(ValueError):
            avg_rank_bound(8, 0.0)

    def test_max_rank_bound_grows_with_n_and_shrinking_beta(self):
        assert max_rank_bound(64, 1.0) > max_rank_bound(8, 1.0)
        assert max_rank_bound(8, 0.25) > max_rank_bound(8, 1.0)

    def test_max_rank_validation(self):
        with pytest.raises(ValueError):
            max_rank_bound(1, 1.0)
        with pytest.raises(ValueError):
            max_rank_bound(8, 2.0)

    def test_divergence_prediction(self):
        assert divergence_prediction(100, 8) == pytest.approx(
            math.sqrt(100 * 8 * math.log(8))
        )
        with pytest.raises(ValueError):
            divergence_prediction(-1, 8)
        with pytest.raises(ValueError):
            divergence_prediction(10, 1)


class TestFits:
    def test_linear_scaling(self):
        ns = np.array([8, 16, 32, 64], dtype=float)
        slope, r2 = fit_scaling_exponent(ns, 0.9 * ns)
        assert slope == pytest.approx(1.0)
        assert r2 > 0.999

    def test_envelope_constant(self):
        measurements = np.array([4.0, 10.0])
        bounds = np.array([2.0, 4.0])
        assert envelope_constant(measurements, bounds) == pytest.approx(2.5)

    def test_envelope_validation(self):
        with pytest.raises(ValueError):
            envelope_constant([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            envelope_constant([1.0], [0.0])
