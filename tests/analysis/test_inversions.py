"""Tests for inversion counting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.inversions import count_inversions, inversion_rate


class TestCount:
    def test_sorted_has_zero(self):
        assert count_inversions([1, 2, 3, 4]) == 0

    def test_reversed_has_max(self):
        assert count_inversions([4, 3, 2, 1]) == 6

    def test_single_swap(self):
        assert count_inversions([2, 1, 3]) == 1

    def test_duplicates_not_inverted(self):
        assert count_inversions([1, 1, 1]) == 0

    def test_empty_and_singleton(self):
        assert count_inversions([]) == 0
        assert count_inversions([5]) == 0


class TestRate:
    def test_bounds(self):
        assert inversion_rate([1, 2, 3]) == 0.0
        assert inversion_rate([3, 2, 1]) == 1.0
        assert inversion_rate([7]) == 0.0

    def test_half_sorted(self):
        assert 0 < inversion_rate([2, 1, 4, 3]) < 0.5


@settings(max_examples=80, deadline=None)
@given(seq=st.lists(st.integers(-50, 50), max_size=80))
def test_matches_quadratic_reference(seq):
    reference = sum(
        1 for i in range(len(seq)) for j in range(i + 1, len(seq)) if seq[i] > seq[j]
    )
    assert count_inversions(seq) == reference
