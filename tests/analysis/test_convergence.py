"""Tests for burn-in estimation and stationarity classification."""

import numpy as np
import pytest

from repro.analysis.convergence import drift_rate, estimate_burn_in, is_stationary
from repro.core.process import SequentialProcess
from repro.core.single_choice import SingleChoiceProcess


class TestEstimateBurnIn:
    def test_flat_series_converges_at_zero(self):
        report = estimate_burn_in([5.0] * 200)
        assert report.burn_in == 0
        assert report.converged
        assert report.reference_mean == pytest.approx(5.0)

    def test_ramp_then_plateau(self):
        series = list(np.linspace(100, 10, 100)) + [10.0] * 300
        report = estimate_burn_in(series, n_windows=20, tolerance=0.1)
        assert report.converged
        assert 50 <= report.burn_in <= 140

    def test_never_converging(self):
        series = list(np.linspace(1, 100, 400))
        report = estimate_burn_in(series, tolerance=0.05)
        # A linear ramp only "settles" at the very end, if at all.
        assert report.burn_in is None or report.burn_in > 200

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_burn_in([1.0] * 5, n_windows=20)
        with pytest.raises(ValueError):
            estimate_burn_in([1.0] * 100, tolerance=0.0)


class TestStationarity:
    def test_flat_is_stationary(self):
        assert is_stationary([3.0] * 200)

    def test_strong_drift_is_not(self):
        assert not is_stationary(list(np.linspace(1, 100, 400)), tolerance=0.05)

    def test_two_choice_process_stationary(self):
        proc = SequentialProcess(8, 40000, beta=1.0, rng=3)
        trace = proc.run_steady_state(12000, 12000)
        assert is_stationary(trace.windowed_means(300), tolerance=0.35)

    def test_single_choice_process_drifts(self):
        proc = SingleChoiceProcess(8, 60000, rng=3)
        trace = proc.run_steady_state(25000, 25000)
        assert drift_rate(trace.windowed_means(500)) > 0.3


class TestDriftRate:
    def test_flat_zero(self):
        assert drift_rate([5.0] * 100) == pytest.approx(0.0)

    def test_positive_for_growth(self):
        assert drift_rate(list(range(1, 101))) > 0.5

    def test_negative_for_decay(self):
        assert drift_rate(list(range(100, 0, -1))) < -0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            drift_rate([1.0] * 4)

    def test_zero_mean_guard(self):
        assert drift_rate([-1.0, 1.0] * 10) == 0.0
