"""Tests for ASCII charts."""

import pytest

from repro.analysis.ascii_plot import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([1, 2, 4, 8])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10
        assert s[-1] == "█"


class TestLineChart:
    def test_contains_markers_and_legend(self):
        out = line_chart([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]}, title="demo")
        assert "demo" in out
        assert "o a" in out and "x b" in out
        assert "o" in out and "x" in out

    def test_axis_labels(self):
        out = line_chart([0, 10], {"s": [5, 50]})
        assert "50" in out
        assert "10" in out

    def test_logy(self):
        out = line_chart([1, 2, 3], {"s": [1, 10, 100]}, logy=True)
        assert "[log y]" in out
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [0, 1]}, logy=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([], {"s": []})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1]})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1, 2]}, width=4)

    def test_flat_series_ok(self):
        out = line_chart([1, 2], {"s": [7, 7]})
        assert "7" in out


class TestBarChart:
    def test_bars_scale(self):
        out = bar_chart(["a", "bb"], [1, 10], width=20)
        lines = out.splitlines()
        assert lines[0].count("#") < lines[1].count("#")
        assert lines[1].count("#") == 20

    def test_title(self):
        assert bar_chart(["a"], [1], title="T").splitlines()[0] == "T"

    def test_zero_values(self):
        out = bar_chart(["z"], [0])
        assert "0" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])
        with pytest.raises(ValueError):
            bar_chart([], [])
