"""Router policies, shard-owner loop, and small end-to-end service runs."""

import threading

import pytest

from repro.service.loadgen import ScheduleSpec
from repro.service.metrics import merge_events, replay_ranks, summarize
from repro.service.server import Router, run_service, run_shard_owner
from repro.service.shm import (
    EV_BYE,
    EV_DELETE,
    EV_EMPTY,
    EV_INSERT,
    OP_DELETE,
    OP_INSERT,
    OP_STOP,
    ServiceSegment,
    TOP_EMPTY,
)


@pytest.fixture
def segment():
    seg = ServiceSegment.create(shards=3, lanes=2, req_capacity=64, ev_capacity=256)
    yield seg
    seg.close()
    seg.unlink()


class TestRouter:
    def test_single_policy_pins_first_alive(self, segment):
        router = Router(segment, beta=1.0, policy="single", rng=0)
        assert {router.insert_shard() for _ in range(10)} == {0}
        router.mark_dead(0)
        assert {router.delete_shard() for _ in range(10)} == {1}

    def test_rr_policy_cycles(self, segment):
        router = Router(segment, beta=0.0, policy="rr", rng=0)
        assert [router.insert_shard() for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_mq_two_choice_prefers_smaller_top(self, segment):
        segment.header(0).publish(top=100, size=5, heartbeat_ns=1)
        segment.header(1).publish(top=5, size=5, heartbeat_ns=1)
        segment.header(2).publish(top=50, size=5, heartbeat_ns=1)
        router = Router(segment, beta=1.0, policy="mq", rng=0)
        picks = [router.delete_shard() for _ in range(200)]
        # Shard 1 holds the smallest top: it wins every probe pair it
        # appears in, i.e. 1 - (2/3)^2 = 5/9 of deletes in expectation.
        assert picks.count(1) > picks.count(0)
        assert picks.count(1) > picks.count(2)

    def test_mq_beta_zero_is_uniform_single_choice(self, segment):
        segment.header(0).publish(top=1, size=5, heartbeat_ns=1)  # best top
        router = Router(segment, beta=0.0, policy="mq", rng=1)
        picks = [router.delete_shard() for _ in range(300)]
        # One-choice never compares tops, so the best shard gets ~1/3.
        assert 50 < picks.count(0) < 150

    def test_empty_top_loses_two_choice(self, segment):
        segment.header(0).publish(top=TOP_EMPTY, size=0, heartbeat_ns=1)
        segment.header(1).publish(top=7, size=1, heartbeat_ns=1)
        segment.header(2).publish(top=TOP_EMPTY, size=0, heartbeat_ns=1)
        router = Router(segment, beta=1.0, policy="mq", rng=2)
        picks = [router.delete_shard() for _ in range(100)]
        assert picks.count(1) > 50

    def test_gamma_biases_inserts(self, segment):
        router = Router(segment, beta=0.5, gamma=0.8, policy="mq", rng=3)
        picks = [router.insert_shard() for _ in range(600)]
        # two-point bias: shard 0 cold, shard 2 hot.
        assert picks.count(2) > picks.count(0)

    def test_all_dead_raises(self, segment):
        router = Router(segment, beta=0.5, rng=0)
        router.mark_dead(0)
        router.mark_dead(1)
        with pytest.raises(RuntimeError, match="every shard is dead"):
            router.mark_dead(2)

    def test_unknown_policy_rejected(self, segment):
        with pytest.raises(ValueError, match="unknown policy"):
            Router(segment, beta=0.5, policy="lifo", rng=0)


class TestShardOwner:
    def _run_owner(self, segment, shard):
        thread = threading.Thread(
            target=run_shard_owner, args=(segment.name, shard, 0.0002), daemon=True
        )
        thread.start()
        return thread

    def test_owner_serves_heap_order_and_stops(self, segment):
        thread = self._run_owner(segment, 0)
        lane0 = segment.request_ring(0, 0)
        lane1 = segment.request_ring(0, 1)
        for label in (30, 10, 20):
            assert lane0.try_push(OP_INSERT, label, 1, 0, 0)
        for _ in range(3):
            assert lane1.try_push(OP_DELETE, -1, 2, 0, 0)
        assert lane1.try_push(OP_DELETE, -1, 3, 0, 0)  # heap now empty
        lane0.try_push(OP_STOP, 0, 4, 0, 0)
        lane1.try_push(OP_STOP, 0, 4, 0, 0)
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        events = []
        ring = segment.event_ring(0)
        while (ev := ring.try_pop()) is not None:
            events.append(ev)
        kinds = [e[0] for e in events]
        assert kinds == [EV_INSERT] * 3 + [EV_DELETE] * 3 + [EV_EMPTY, EV_BYE]
        assert [e[1] for e in events[3:6]] == [10, 20, 30]  # min-heap order
        clocks = [e[2] for e in events]
        assert clocks == sorted(clocks) and len(set(clocks)) == len(clocks)

    def test_owner_publishes_header(self, segment):
        thread = self._run_owner(segment, 1)
        # One producer view per lane: a second view of the same lane would
        # restart at position 0 and find its slot already recycled.
        lanes = [segment.request_ring(1, lane) for lane in range(segment.lanes)]
        lanes[0].try_push(OP_INSERT, 77, 1, 0, 0)
        deadline = threading.Event()
        for _ in range(5000):
            epoch, top, size, heartbeat = segment.header(1).read()
            if size == 1 and top == 77:
                break
            deadline.wait(0.001)
        assert (top, size) == (77, 1)
        assert epoch == 1  # first owner generation
        assert heartbeat > 0
        for lane in lanes:
            assert lane.try_push(OP_STOP, 0, 9, 0, 0)
        thread.join(timeout=10.0)
        assert not thread.is_alive()


class TestMetricsPieces:
    def test_merge_orders_by_clock_then_shard(self):
        by_shard = [
            [(EV_INSERT, 1, 5, 0, 0), (EV_DELETE, 1, 9, 0, 0)],
            [(EV_INSERT, 2, 5, 0, 0), (EV_INSERT, 3, 7, 0, 0)],
        ]
        merged = merge_events(by_shard)
        assert [(r[3], r[0]) for r in merged] == [(5, 0), (5, 1), (7, 1), (9, 0)]

    def test_replay_ranks_scores_global_rank(self):
        # Shard 0 holds {10}, shard 1 holds {5}; deleting 10 while 5 is
        # present costs rank 2, then deleting 5 costs rank 1.
        by_shard = [
            [(EV_INSERT, 10, 1, 0, 0), (EV_DELETE, 10, 4, 0, 0)],
            [(EV_INSERT, 5, 2, 0, 0), (EV_DELETE, 5, 6, 0, 0)],
        ]
        ranks = replay_ranks(merge_events(by_shard), label_universe=11, sample_every=1)
        assert ranks.tolist() == [2, 1]

    def test_summarize_counts_and_filters_prefill_latency(self):
        spec = ScheduleSpec(mode="poisson", ops=2, prefill=1, rate=0.0, seed=0)
        schedule = spec.build()
        pre = int(schedule.prefill_labels[0])
        ins = int(schedule.insert_labels[0])
        by_shard = [[
            (EV_INSERT, pre, 1, 0, 500),  # prefill: t0 == 0, excluded
            (EV_INSERT, ins, 2, 1000, 3000),
            (EV_DELETE, min(pre, ins), 3, 2000, 7000),
        ]]
        out = summarize(by_shard, schedule, wall_s=2.0, rank_sample_every=1)
        assert out["inserts"] == 2 and out["deletes"] == 1
        assert out["ops_processed"] == 2
        assert out["throughput_ops_s"] == pytest.approx(1.5)
        assert out["insert_p50_ms"] == pytest.approx(0.002)
        assert out["delete_p50_ms"] == pytest.approx(0.005)
        assert out["rank"]["removals"] == 1
        assert out["rank_values"] == [1]


class TestEndToEnd:
    def test_small_run_is_clean_and_conserves_labels(self):
        spec = ScheduleSpec(mode="poisson", ops=1200, prefill=128, rate=0.0, seed=11)
        res = run_service(shards=2, workers=2, spec=spec, beta=0.5, seed=5)
        assert res["audit"]["torn"] == 0
        assert res["owner_exitcodes"] == [0, 0]
        assert res["loadgen_exitcodes"] == [0, 0]
        assert res["ops_processed"] == spec.ops
        assert res["throughput_ops_s"] > 0
        # Conservation: every insert (prefill included) either got deleted
        # or is still in a heap at shutdown.
        assert sum(res["residual_sizes"]) == res["inserts"] - res["deletes"]
        assert res["rank"] is not None and res["rank"]["mean_rank"] >= 1.0

    def test_single_policy_serves_exact_heap_order(self):
        spec = ScheduleSpec(mode="poisson", ops=400, prefill=64, rate=0.0, seed=13)
        res = run_service(
            shards=2, workers=1, spec=spec, beta=0.0, policy="single", seed=2,
            rank_sample_every=1,
        )
        assert res["audit"]["torn"] == 0
        # Everything funnels through shard 0: one global heap, so with a
        # single client every delete removes the true minimum (rank 1).
        assert res["per_shard"][1]["inserts"] == 0
        assert res["rank"]["max_rank"] == 1
