"""Degraded mode: SIGKILL a shard owner mid-run, prove nothing tears.

The crash-safety contract of the slot protocol is that a kill at *any*
instruction leaves every ring either free or cleanly committed — the
audit's ``torn == 0`` — and that the surviving shards keep serving while
loadgen workers fail over around the corpse.
"""

import pytest

from repro.service.loadgen import ScheduleSpec
from repro.service.server import run_service


@pytest.fixture(scope="module")
def killed_run():
    # Paced traffic so the run outlives the kill: ~2s of offered load,
    # owner 1 SIGKILLed 0.4s in, with a tight liveness threshold so the
    # probe reroutes quickly.  Small request rings make the backpressure
    # failover path reachable too.
    spec = ScheduleSpec(mode="poisson", ops=3000, prefill=256, rate=1500.0, seed=21)
    return run_service(
        shards=3,
        workers=2,
        spec=spec,
        beta=0.5,
        seed=8,
        req_capacity=256,
        dead_after_s=0.3,
        chaos=(1, 0.4),
        rank_sample_every=8,
    ), spec


class TestKilledShardOwner:
    def test_no_torn_slots_anywhere(self, killed_run):
        res, _ = killed_run
        assert res["audit"]["torn"] == 0

    def test_victim_died_by_sigkill_survivors_exited_clean(self, killed_run):
        res, _ = killed_run
        assert res["killed_shard"] == 1
        assert res["owner_exitcodes"][1] == -9
        assert res["owner_exitcodes"][0] == 0
        assert res["owner_exitcodes"][2] == 0

    def test_loadgen_failed_over_and_finished(self, killed_run):
        res, _ = killed_run
        assert res["loadgen_exitcodes"] == [0, 0]

    def test_survivors_kept_serving(self, killed_run):
        res, spec = killed_run
        survivors = [res["per_shard"][s] for s in (0, 2)]
        victim = res["per_shard"][1]
        survivor_ops = sum(r["inserts"] + r["deletes"] + r["empties"] for r in survivors)
        victim_ops = victim["inserts"] + victim["deletes"] + victim["empties"]
        # The victim served ~1/3 of the first 0.4s; survivors absorbed the
        # rest of the run.  Requests already queued on the dead shard when
        # it died are lost (degraded mode loses in-flight work, never
        # integrity), so processed < offered but by a bounded amount.
        assert survivor_ops > 3 * victim_ops
        assert res["ops_processed"] > 0.6 * spec.ops
        assert res["ops_processed"] <= spec.ops

    def test_victim_events_end_but_survivors_continue(self, killed_run):
        res, _ = killed_run
        # Residuals: the victim's BYE never arrived, so its residual is
        # unknown; survivors report theirs.
        assert res["residual_sizes"][1] is None
        assert res["residual_sizes"][0] is not None
        assert res["residual_sizes"][2] is not None

    def test_rank_replay_still_works_on_partial_stream(self, killed_run):
        res, _ = killed_run
        assert res["rank"] is not None
        assert res["rank"]["mean_rank"] >= 1.0
