"""Self-healing service: supervised takeovers under a seeded chaos schedule.

The acceptance contract of the recovery subsystem: a live cluster under a
deterministic schedule of SIGKILLs plus a zombie (SIGSTOP, fenced awake)
finishes with every shard alive again, *exact* op conservation proven from
the journal, zero torn slots, zero unfenced zombie commits, and a
post-recovery rank distribution back inside the clean-run envelope of the
exact stationary oracle.

On the oracle gate: the PR 9 gate (``oracle_ks < 0.05``) was calibrated on
the vector backend at n=64 queues with ideal interleaving.  A 3-shard live
service on a shared host has a *clean-run* envelope of ``oracle_ks`` ≈
0.05-0.10 (process-scheduling quanta batch deletes per shard, which the
stationary law does not model), measured on crash-free runs of identical
geometry.  ``CHAOS_ORACLE_KS_GATE`` is therefore that clean envelope plus
margin: it catches recovery-induced divergence (lost heap mass, replayed
duplicates — those push KS past 0.2 immediately) without flaking on
scheduler noise the oracle never promised to capture.
"""

import struct

import pytest

from repro.service.loadgen import ScheduleSpec
from repro.service.server import (
    EXIT_FENCED,
    AllShardsDeadError,
    Router,
    recover_shard_state,
    replay_journal,
)
from repro.service.shm import (
    EV_DELETE,
    EV_INSERT,
    J_STOP,
    ServiceSegment,
)
from repro.service.supervisor import ChaosSpec, run_chaos_service

CHAOS_ORACLE_KS_GATE = 0.15  # clean-run envelope + margin; see module docstring
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def chaos_run(request):
    seed = request.param
    # ~4s of paced traffic; all faults land inside [0.25s, 1.45s) so a
    # long post-recovery window remains for the oracle re-convergence
    # check.  Three SIGKILLs plus one zombie: the injector fires each
    # fault at a *live* owner (waiting out in-flight takeovers), so kills
    # routinely land on mid-stream successors — the mid-publish window —
    # and the zombie lands on a running owner with state to scribble.
    spec = ScheduleSpec(
        mode="poisson", ops=12_000, prefill=512, rate=3000.0, seed=seed
    )
    chaos = ChaosSpec(
        kills=3, stalls=0, zombies=1, seed=seed, start_s=0.25, window_s=1.2
    )
    res = run_chaos_service(
        shards=3, workers=2, spec=spec, chaos=chaos, beta=1.0, seed=seed,
        dead_after_s=0.35, snapshot_every=256, rank_sample_every=4,
    )
    return res, spec, chaos


class TestChaosAcceptance:
    def test_every_scheduled_fault_fired(self, chaos_run):
        res, _, chaos = chaos_run
        events = res["chaos"]["events"]
        assert len(events) == chaos.kills + chaos.zombies
        kinds = [e["kind"] for e in events]
        assert kinds.count("kill") == chaos.kills
        assert kinds.count("zombie") == chaos.zombies
        assert not [k for k in kinds if k.endswith("-missed")]
        assert all(e["pid"] is not None for e in events)

    def test_every_shard_alive_again_and_all_ops_served(self, chaos_run):
        res, spec, _ = chaos_run
        assert res["owner_exitcodes"] == [0, 0, 0]
        assert res["loadgen_exitcodes"] == [0, 0]
        assert res["ops_processed"] == spec.ops

    def test_supervisor_recovered_every_fault(self, chaos_run):
        res, _, chaos = chaos_run
        sup = res["supervision"]
        # Each fault disables a live owner exactly once, so each demands
        # its own incident; chained faults (a successor killed before its
        # first heartbeat) add retry incidents on top.
        assert len(sup["incidents"]) >= chaos.kills + chaos.zombies
        assert sup["takeovers"] >= 1
        # Every fault's victim generation was really reaped by SIGKILL or
        # died fenced — no generation is unaccounted for.
        assert all(
            r["exitcode"] in (-9, EXIT_FENCED) for r in sup["retired_exitcodes"]
        )

    def test_zombie_died_fenced_and_never_committed(self, chaos_run):
        res, _, _ = chaos_run
        fenced = [
            inc
            for inc in res["supervision"]["incidents"]
            if inc["action"] == "fence-respawn"
        ]
        assert fenced, "the zombie fault never triggered a fence takeover"
        assert any(inc["zombie_exitcode"] == EXIT_FENCED for inc in fenced)
        # Zero unfenced zombie commits: no journal entry anywhere carries
        # a regressed epoch.
        assert res["conservation"]["epoch_regressions"] == 0

    def test_exact_op_conservation_from_journal(self, chaos_run):
        res, spec, _ = chaos_run
        cons = res["conservation"]
        assert cons["ok"], cons
        assert cons["events_match"], cons
        # inserts == deletes + residual heap contents, per shard and in
        # total, verified from snapshot+journal (not the event stream).
        assert cons["residual_total"] == spec.prefill
        for row in cons["shards"]:
            assert row["conserved"], row
            assert row["monotone"], row

    def test_no_torn_slots_no_stranded_entries(self, chaos_run):
        res, _, _ = chaos_run
        assert res["audit"]["torn"] == 0
        assert res["audit"]["pending"] == 0

    def test_recoveries_replayed_mid_stream_state(self, chaos_run):
        res, _, _ = chaos_run
        incidents = res["supervision"]["incidents"]
        # Every takeover handed the successor a non-empty heap (the shard
        # carried prefill mass throughout), and kills land under load, so
        # at least one takeover rebuilt state by replaying a journal
        # suffix on top of a snapshot rather than starting empty.
        assert all(inc["recovered_heap"] > 0 for inc in incidents)
        assert any(inc["replayed"] > 0 for inc in incidents)

    def test_post_recovery_rank_quality_reconverges(self, chaos_run):
        res, _, _ = chaos_run
        post = res["post_recovery"]
        assert post is not None
        assert post["n_ranks"] >= 300, post
        assert post["oracle_ks"] < CHAOS_ORACLE_KS_GATE, post


class TestChaosSpec:
    def test_build_is_deterministic_in_seed(self):
        spec = ChaosSpec(kills=3, stalls=2, zombies=1, seed=7)
        assert spec.build(4) == spec.build(4)
        assert spec.build(4) != ChaosSpec(kills=3, stalls=2, zombies=1, seed=8).build(4)

    def test_build_schedules_every_fault_inside_window(self):
        spec = ChaosSpec(kills=2, stalls=1, zombies=1, seed=3, start_s=0.5, window_s=2.0)
        ops = spec.build(3)
        kinds = [op["kind"] for op in ops]
        assert kinds.count("kill") == 2
        assert kinds.count("stall") == 1
        assert kinds.count("zombie") == 1
        assert kinds.count("cont") == 1  # stalls get a paired resume
        for op in ops:
            if op["kind"] != "cont":
                assert 0.5 <= op["at_s"] < 2.5
            assert 0 <= op["shard"] < 3
        conts = [op for op in ops if op["kind"] == "cont"]
        stalls = [op for op in ops if op["kind"] == "stall"]
        assert conts[0]["id"] == stalls[0]["id"]
        assert conts[0]["at_s"] == pytest.approx(stalls[0]["at_s"] + spec.stall_s)

    def test_build_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            ChaosSpec(kills=-1).build(2)


@pytest.fixture
def segment():
    seg = ServiceSegment.create(
        shards=1, lanes=2, req_capacity=16, ev_capacity=32,
        journal_capacity=32, state_capacity=64,
    )
    yield seg
    seg.close()
    seg.unlink()


class TestRecoveryPieces:
    def test_journal_only_recovery(self, segment):
        """A predecessor that never snapshotted: the successor rebuilds the
        heap from the journal alone."""
        journal = segment.journal(0)
        assert journal.try_append(EV_INSERT, 5, 1, 10, 0, 0, 0, 1)
        assert journal.try_append(EV_INSERT, 3, 2, 11, 0, 1, 1, 1)
        assert journal.try_append(EV_DELETE, 3, 3, 12, 1, 0, 2, 1)
        state = recover_shard_state(segment, 0)
        assert sorted(state.heap) == [5]
        assert state.clock == 3
        assert state.replayed == 3
        assert (state.cum_inserts, state.cum_deletes) == (2, 1)
        assert state.watermarks == [2, 1]
        assert state.stopped == [False, False]
        # Nothing reached the event ring before the crash: every journaled
        # op must be re-emitted by the successor.
        assert [(op, label) for op, label, _, _ in state.reemit] == [
            (EV_INSERT, 5), (EV_INSERT, 3), (EV_DELETE, 3),
        ]

    def test_snapshot_plus_journal_suffix(self, segment):
        """Entries below the snapshot's fold point are already in the
        labels and must not be replayed twice."""
        journal = segment.journal(0)
        assert journal.try_append(EV_INSERT, 9, 1, 0, 0, 0, 0, 1)
        assert journal.try_append(EV_INSERT, 4, 2, 0, 0, 1, 1, 1)
        assert journal.try_append(EV_INSERT, 6, 3, 0, 0, 2, 2, 1)
        segment.snapshot(0).write(
            epoch=1, clock=2, fold_pos=2, ev_head=2, cum_inserts=2,
            cum_deletes=0, cum_empties=0, stopped_mask=0,
            watermarks=[2, 0], labels=[4, 9],
        )
        state = recover_shard_state(segment, 0)
        assert sorted(state.heap) == [4, 6, 9]
        assert state.replayed == 1  # only the post-fold entry
        assert state.cum_inserts == 3
        assert [label for _, label, _, _ in state.reemit] == [6]

    def test_fenced_zombie_entries_are_skipped(self, segment):
        """A journal entry with a regressed epoch is a zombie commit: the
        replay must not apply it (and must count it for the auditor)."""
        journal = segment.journal(0)
        assert journal.try_append(EV_INSERT, 7, 1, 0, 0, 0, 0, 2)  # epoch 2
        assert journal.try_append(EV_INSERT, 1, 2, 0, 0, 1, 1, 1)  # zombie!
        state = recover_shard_state(segment, 0)
        assert sorted(state.heap) == [7]
        assert state.fenced_entries == 1
        assert state.replayed == 1

    def test_stop_entries_restore_stopped_lanes(self, segment):
        journal = segment.journal(0)
        assert journal.try_append(J_STOP, 0, 1, 0, 1, 0, -1, 1)
        state = recover_shard_state(segment, 0)
        assert state.stopped == [False, True]
        assert state.reemit == []  # STOPs are not events

    def test_replay_refuses_diverged_delete(self, segment):
        """A delete whose label is not the heap top means the journal and
        snapshot disagree — a protocol breach that must be loud."""
        from repro.service.shm import JournalEntry, TornSlotError

        snap = segment.snapshot(0).read()
        entries = [JournalEntry(0, EV_DELETE, 42, 1, 0, 0, 0, 0, 1)]
        with pytest.raises(TornSlotError, match="replay diverged"):
            replay_journal(snap, entries, ev_head=0)

    def test_mid_publish_crash_header_heals(self, segment):
        """Predecessor killed mid-seqlock-publish (odd seq, torn fields):
        readers fall back instead of hanging, and the successor's first
        publish restores the parity convention for good."""
        hdr = segment.header(0)
        hdr.publish(top=10, size=2, heartbeat_ns=50)
        # Kill mid-publish: odd seqlock, top already updated, rest torn.
        (seq,) = struct.unpack_from("<Q", hdr._buf, hdr._offset + 8)
        struct.pack_into("<Q", hdr._buf, hdr._offset + 8, seq + 1)
        struct.pack_into("<q", hdr._buf, hdr._offset + 16, 8)
        assert hdr.read(max_tries=4)[1] == 8  # stale fallback, no hang
        # Successor: fence, then publish over the torn header.
        assert hdr.bump_epoch() == 1
        hdr.publish(top=8, size=3, heartbeat_ns=99)
        (seq,) = struct.unpack_from("<Q", hdr._buf, hdr._offset + 8)
        assert seq % 2 == 0  # parity restored...
        assert hdr.read(max_tries=2) == (1, 8, 3, 99)  # ...reads are clean


class TestRouterReadmission:
    def test_mark_alive_readmits_recovered_shard(self, segment):
        seg3 = ServiceSegment.create(shards=3, lanes=1, req_capacity=8, ev_capacity=8)
        try:
            router = Router(seg3, beta=0.0, policy="rr", rng=0)
            router.mark_dead(1)
            assert router.alive_shards() == (0, 2)
            assert 1 not in {router.insert_shard() for _ in range(8)}
            router.mark_alive(1)
            assert router.alive_shards() == (0, 1, 2)
            assert 1 in {router.insert_shard() for _ in range(8)}
            router.mark_alive(1)  # idempotent
            assert router.alive_shards() == (0, 1, 2)
        finally:
            seg3.close()
            seg3.unlink()

    def test_all_dead_error_carries_heartbeat_ages(self, segment):
        segment.header(0).publish(top=1, size=1, heartbeat_ns=1)  # published once
        router = Router(segment, beta=0.0, rng=0)
        with pytest.raises(AllShardsDeadError) as err:
            router.mark_dead(0)
        assert set(err.value.ages) == {0}
        assert err.value.ages[0] is not None and err.value.ages[0] > 0
        assert "heartbeat" in str(err.value)

    def test_never_published_shard_reports_none_age(self, segment):
        router = Router(segment, beta=0.0, rng=0)
        with pytest.raises(AllShardsDeadError) as err:
            router.mark_dead(0)
        assert err.value.ages[0] is None
        assert "never published" in str(err.value)
