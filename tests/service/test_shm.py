"""Slot protocol, seqlock header, and segment layout tests (in-process)."""

import struct

import pytest

from repro.service.shm import (
    EV_DELETE,
    OP_DELETE,
    OP_INSERT,
    SLOT,
    ServiceSegment,
    ShardHeader,
    SlotRing,
    TOP_EMPTY,
    TornSlotError,
    slot_checksum,
)


@pytest.fixture
def segment():
    seg = ServiceSegment.create(shards=2, lanes=3, req_capacity=8, ev_capacity=16)
    yield seg
    seg.close()
    seg.unlink()


class TestSlotRing:
    def test_roundtrip(self, segment):
        ring = segment.request_ring(0, 0)
        assert ring.try_push(OP_INSERT, 42, clock=7, t0_ns=100, t1_ns=0)
        reader = segment.request_ring(0, 0)  # fresh view, same region
        assert reader.try_pop() == (OP_INSERT, 42, 7, 100, 0)
        assert reader.try_pop() is None

    def test_fifo_order(self, segment):
        ring = segment.request_ring(0, 1)
        for i in range(5):
            assert ring.try_push(OP_INSERT, i)
        got = [ring.try_pop()[1] for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_full_rejects_push(self, segment):
        ring = segment.request_ring(0, 0)
        for i in range(ring.capacity):
            assert ring.try_push(OP_INSERT, i)
        assert not ring.try_push(OP_INSERT, 999)

    def test_wraparound_many_times(self, segment):
        producer = segment.request_ring(1, 2)
        consumer = segment.request_ring(1, 2)
        for i in range(10 * producer.capacity):
            assert producer.try_push(OP_DELETE, i)
            assert consumer.try_pop() == (OP_DELETE, i, 0, 0, 0)

    def test_negative_labels_and_timestamps_roundtrip(self, segment):
        ring = segment.request_ring(0, 0)
        assert ring.try_push(OP_INSERT, -5, clock=1, t0_ns=-1, t1_ns=-2)
        assert ring.try_pop() == (OP_INSERT, -5, 1, -1, -2)

    def test_recover_resumes_mid_stream(self, segment):
        producer = segment.request_ring(0, 0)
        consumer = segment.request_ring(0, 0)
        for i in range(11):  # wraps the 8-slot ring
            producer.try_push(OP_INSERT, i)
            if i < 6:
                consumer.try_pop()
        # A brand-new attachment must find the same positions.
        recovered = segment.request_ring(0, 0)
        recovered.recover()
        got = []
        while (item := recovered.try_pop()) is not None:
            got.append(item[1])
        assert got == list(range(6, 11))
        # ... and the recovered producer position accepts new pushes.
        producer2 = segment.request_ring(0, 0)
        producer2.recover()
        assert producer2.try_push(OP_INSERT, 77)
        assert recovered.try_pop()[1] == 77

    def test_recover_on_fresh_ring(self, segment):
        ring = segment.request_ring(0, 0)
        ring.recover()
        assert ring.try_pop() is None
        assert ring.try_push(OP_INSERT, 1)

    def test_audit_clean(self, segment):
        ring = segment.event_ring(0)
        for i in range(5):
            ring.try_push(EV_DELETE, i)
        ring.try_pop()
        audit = ring.audit()
        assert audit.ok
        assert audit.committed == 4
        assert audit.free == ring.capacity - 4

    def test_audit_detects_corrupted_checksum(self, segment):
        ring = segment.request_ring(0, 0)
        ring.try_push(OP_INSERT, 42)
        # Flip a payload byte *after* commit: simulated torn write.
        off = ring._slot_offset(0) + 16  # label field
        ring._buf[off] ^= 0xFF
        audit = ring.audit()
        assert audit.torn == 1
        assert not audit.ok

    def test_pop_raises_on_torn_slot(self, segment):
        ring = segment.request_ring(0, 0)
        ring.try_push(OP_INSERT, 42)
        ring._buf[ring._slot_offset(0) + 16] ^= 0xFF
        with pytest.raises(TornSlotError):
            ring.try_pop()

    def test_uncommitted_write_is_invisible(self, segment):
        """A payload written without the seq publish must not be consumed."""
        ring = segment.request_ring(0, 0)
        off = ring._slot_offset(0)
        # Write payload bytes but keep seq at its free value (0): this is
        # exactly the state a SIGKILL between payload and commit leaves.
        SLOT.pack_into(
            ring._buf, off, 0, OP_INSERT, 123, 0, 0, 0,
            slot_checksum(OP_INSERT, 123, 0, 0, 0),
        )
        assert ring.try_pop() is None
        assert ring.audit().ok  # free slot, not torn

    def test_checksum_is_deterministic_and_nonzero(self):
        a = slot_checksum(OP_INSERT, 5, 1, 2, 3)
        assert a == slot_checksum(OP_INSERT, 5, 1, 2, 3)
        assert a != slot_checksum(OP_INSERT, 6, 1, 2, 3)
        assert slot_checksum(0, 0, 0, 0, 0) != 0


class TestShardHeader:
    def test_initial_state(self, segment):
        epoch, top, size, hb = segment.header(0).read()
        assert (epoch, top, size, hb) == (0, TOP_EMPTY, 0, 0)

    def test_publish_read_roundtrip(self, segment):
        hdr = segment.header(1)
        hdr.publish(top=17, size=4, heartbeat_ns=123456)
        epoch, top, size, hb = segment.header(1).read()
        assert (top, size, hb) == (17, 4, 123456)

    def test_epoch_fencing(self, segment):
        hdr = segment.header(0)
        assert hdr.bump_epoch() == 1
        assert hdr.bump_epoch() == 2
        assert segment.header(0).epoch() == 2

    def test_read_survives_writer_died_mid_publish(self, segment):
        hdr = segment.header(0)
        hdr.publish(top=9, size=1, heartbeat_ns=5)
        # Simulate a writer killed after the odd seqlock store.
        (seq,) = struct.unpack_from("<Q", hdr._buf, hdr._offset + 8)
        struct.pack_into("<Q", hdr._buf, hdr._offset + 8, seq + 1)
        epoch, top, size, hb = hdr.read(max_tries=4)
        assert top == 9  # stale-but-usable snapshot, no hang


class TestServiceSegment:
    def test_attach_sees_creator_geometry_and_data(self, segment):
        segment.request_ring(1, 2).try_push(OP_INSERT, 314)
        other = ServiceSegment.attach(segment.name)
        try:
            assert (other.shards, other.lanes) == (2, 3)
            assert (other.req_capacity, other.ev_capacity) == (8, 16)
            assert other.request_ring(1, 2).try_pop()[1] == 314
        finally:
            other.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(ValueError, match="not a repro.service segment"):
                ServiceSegment.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_rings_do_not_overlap(self, segment):
        # Fill every ring with distinct labels, then verify each reads back
        # its own — any layout overlap would cross-contaminate.
        tag = 0
        for s in range(segment.shards):
            for lane in range(segment.lanes):
                segment.request_ring(s, lane).try_push(OP_INSERT, tag)
                tag += 1
            segment.event_ring(s).try_push(EV_DELETE, tag)
            tag += 1
            segment.header(s).publish(top=tag, size=tag, heartbeat_ns=tag)
            tag += 1
        tag = 0
        for s in range(segment.shards):
            for lane in range(segment.lanes):
                assert segment.request_ring(s, lane).try_pop()[1] == tag
                tag += 1
            assert segment.event_ring(s).try_pop()[1] == tag
            tag += 1
            assert segment.header(s).read()[1] == tag
            tag += 1

    def test_bad_indices_raise(self, segment):
        with pytest.raises(IndexError):
            segment.header(2)
        with pytest.raises(IndexError):
            segment.request_ring(0, 3)
        with pytest.raises(IndexError):
            segment.event_ring(-1)

    def test_audit_counts_all_rings(self, segment):
        audit = segment.audit()
        # 2 shards x (3 request lanes + 1 event ring)
        assert audit == {"rings": 8, "torn": 0, "pending": 0}

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            ServiceSegment.create(shards=0, lanes=1)
