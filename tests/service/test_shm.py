"""Slot protocol, seqlock header, and segment layout tests (in-process)."""

import struct
import threading

import numpy as np
import pytest

from repro.service.shm import (
    EV_DELETE,
    EV_INSERT,
    FencedOwnerError,
    JSLOT,
    OP_DELETE,
    OP_INSERT,
    SLOT,
    ServiceSegment,
    ShardHeader,
    SlotRing,
    TOP_EMPTY,
    TornSlotError,
    journal_checksum,
    slot_checksum,
)


@pytest.fixture
def segment():
    seg = ServiceSegment.create(shards=2, lanes=3, req_capacity=8, ev_capacity=16)
    yield seg
    seg.close()
    seg.unlink()


class TestSlotRing:
    def test_roundtrip(self, segment):
        ring = segment.request_ring(0, 0)
        assert ring.try_push(OP_INSERT, 42, clock=7, t0_ns=100, t1_ns=0)
        reader = segment.request_ring(0, 0)  # fresh view, same region
        assert reader.try_pop() == (OP_INSERT, 42, 7, 100, 0)
        assert reader.try_pop() is None

    def test_fifo_order(self, segment):
        ring = segment.request_ring(0, 1)
        for i in range(5):
            assert ring.try_push(OP_INSERT, i)
        got = [ring.try_pop()[1] for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_full_rejects_push(self, segment):
        ring = segment.request_ring(0, 0)
        for i in range(ring.capacity):
            assert ring.try_push(OP_INSERT, i)
        assert not ring.try_push(OP_INSERT, 999)

    def test_wraparound_many_times(self, segment):
        producer = segment.request_ring(1, 2)
        consumer = segment.request_ring(1, 2)
        for i in range(10 * producer.capacity):
            assert producer.try_push(OP_DELETE, i)
            assert consumer.try_pop() == (OP_DELETE, i, 0, 0, 0)

    def test_negative_labels_and_timestamps_roundtrip(self, segment):
        ring = segment.request_ring(0, 0)
        assert ring.try_push(OP_INSERT, -5, clock=1, t0_ns=-1, t1_ns=-2)
        assert ring.try_pop() == (OP_INSERT, -5, 1, -1, -2)

    def test_recover_resumes_mid_stream(self, segment):
        producer = segment.request_ring(0, 0)
        consumer = segment.request_ring(0, 0)
        for i in range(11):  # wraps the 8-slot ring
            producer.try_push(OP_INSERT, i)
            if i < 6:
                consumer.try_pop()
        # A brand-new attachment must find the same positions.
        recovered = segment.request_ring(0, 0)
        recovered.recover()
        got = []
        while (item := recovered.try_pop()) is not None:
            got.append(item[1])
        assert got == list(range(6, 11))
        # ... and the recovered producer position accepts new pushes.
        producer2 = segment.request_ring(0, 0)
        producer2.recover()
        assert producer2.try_push(OP_INSERT, 77)
        assert recovered.try_pop()[1] == 77

    def test_recover_on_fresh_ring(self, segment):
        ring = segment.request_ring(0, 0)
        ring.recover()
        assert ring.try_pop() is None
        assert ring.try_push(OP_INSERT, 1)

    def test_audit_clean(self, segment):
        ring = segment.event_ring(0)
        for i in range(5):
            ring.try_push(EV_DELETE, i)
        ring.try_pop()
        audit = ring.audit()
        assert audit.ok
        assert audit.committed == 4
        assert audit.free == ring.capacity - 4

    def test_audit_detects_corrupted_checksum(self, segment):
        ring = segment.request_ring(0, 0)
        ring.try_push(OP_INSERT, 42)
        # Flip a payload byte *after* commit: simulated torn write.
        off = ring._slot_offset(0) + 16  # label field
        ring._buf[off] ^= 0xFF
        audit = ring.audit()
        assert audit.torn == 1
        assert not audit.ok

    def test_pop_raises_on_torn_slot(self, segment):
        ring = segment.request_ring(0, 0)
        ring.try_push(OP_INSERT, 42)
        ring._buf[ring._slot_offset(0) + 16] ^= 0xFF
        with pytest.raises(TornSlotError):
            ring.try_pop()

    def test_uncommitted_write_is_invisible(self, segment):
        """A payload written without the seq publish must not be consumed."""
        ring = segment.request_ring(0, 0)
        off = ring._slot_offset(0)
        # Write payload bytes but keep seq at its free value (0): this is
        # exactly the state a SIGKILL between payload and commit leaves.
        SLOT.pack_into(
            ring._buf, off, 0, OP_INSERT, 123, 0, 0, 0,
            slot_checksum(OP_INSERT, 123, 0, 0, 0),
        )
        assert ring.try_pop() is None
        assert ring.audit().ok  # free slot, not torn

    def test_checksum_is_deterministic_and_nonzero(self):
        a = slot_checksum(OP_INSERT, 5, 1, 2, 3)
        assert a == slot_checksum(OP_INSERT, 5, 1, 2, 3)
        assert a != slot_checksum(OP_INSERT, 6, 1, 2, 3)
        assert slot_checksum(0, 0, 0, 0, 0) != 0


class TestShardHeader:
    def test_initial_state(self, segment):
        epoch, top, size, hb = segment.header(0).read()
        assert (epoch, top, size, hb) == (0, TOP_EMPTY, 0, 0)

    def test_publish_read_roundtrip(self, segment):
        hdr = segment.header(1)
        hdr.publish(top=17, size=4, heartbeat_ns=123456)
        epoch, top, size, hb = segment.header(1).read()
        assert (top, size, hb) == (17, 4, 123456)

    def test_epoch_fencing(self, segment):
        hdr = segment.header(0)
        assert hdr.bump_epoch() == 1
        assert hdr.bump_epoch() == 2
        assert segment.header(0).epoch() == 2

    def test_read_survives_writer_died_mid_publish(self, segment):
        hdr = segment.header(0)
        hdr.publish(top=9, size=1, heartbeat_ns=5)
        # Simulate a writer killed after the odd seqlock store.
        (seq,) = struct.unpack_from("<Q", hdr._buf, hdr._offset + 8)
        struct.pack_into("<Q", hdr._buf, hdr._offset + 8, seq + 1)
        epoch, top, size, hb = hdr.read(max_tries=4)
        assert top == 9  # stale-but-usable snapshot, no hang


class TestServiceSegment:
    def test_attach_sees_creator_geometry_and_data(self, segment):
        segment.request_ring(1, 2).try_push(OP_INSERT, 314)
        other = ServiceSegment.attach(segment.name)
        try:
            assert (other.shards, other.lanes) == (2, 3)
            assert (other.req_capacity, other.ev_capacity) == (8, 16)
            assert other.request_ring(1, 2).try_pop()[1] == 314
        finally:
            other.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(ValueError, match="not a repro.service segment"):
                ServiceSegment.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_rings_do_not_overlap(self, segment):
        # Fill every ring with distinct labels, then verify each reads back
        # its own — any layout overlap would cross-contaminate.
        tag = 0
        for s in range(segment.shards):
            for lane in range(segment.lanes):
                segment.request_ring(s, lane).try_push(OP_INSERT, tag)
                tag += 1
            segment.event_ring(s).try_push(EV_DELETE, tag)
            tag += 1
            segment.header(s).publish(top=tag, size=tag, heartbeat_ns=tag)
            tag += 1
        tag = 0
        for s in range(segment.shards):
            for lane in range(segment.lanes):
                assert segment.request_ring(s, lane).try_pop()[1] == tag
                tag += 1
            assert segment.event_ring(s).try_pop()[1] == tag
            tag += 1
            assert segment.header(s).read()[1] == tag
            tag += 1

    def test_bad_indices_raise(self, segment):
        with pytest.raises(IndexError):
            segment.header(2)
        with pytest.raises(IndexError):
            segment.request_ring(0, 3)
        with pytest.raises(IndexError):
            segment.event_ring(-1)

    def test_audit_counts_all_rings(self, segment):
        audit = segment.audit()
        # 2 shards x (3 request lanes + 1 event ring + 1 journal ring)
        assert audit == {"rings": 10, "torn": 0, "pending": 0}

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            ServiceSegment.create(shards=0, lanes=1)
        with pytest.raises(ValueError, match="at most 64 lanes"):
            ServiceSegment.create(shards=1, lanes=65)


class TestCrashEdges:
    """The exact crash windows the recovery protocol leans on."""

    def test_header_read_falls_back_on_odd_seqlock(self, segment):
        """A writer SIGKILLed mid-seqlock (odd seq forever) must not hang
        readers: after max_tries the stale snapshot is returned."""
        hdr = segment.header(0)
        hdr.publish(top=41, size=3, heartbeat_ns=99)
        # Kill "mid-publish": odd seqlock, half-updated fields.
        (seq,) = struct.unpack_from("<Q", hdr._buf, hdr._offset + 8)
        struct.pack_into("<Q", hdr._buf, hdr._offset + 8, seq + 1)  # odd
        struct.pack_into("<q", hdr._buf, hdr._offset + 16, 77)  # torn top
        epoch, top, size, hb = hdr.read(max_tries=8)
        # The fallback returns whatever the fields hold — usable for
        # routing (tops are advisory), never a hang.
        assert (top, size, hb) == (77, 3, 99)

    def test_recover_at_exact_wraparound_boundary(self, segment):
        """Producer exactly one full lap ahead of the consumer: every slot
        committed, head == tail + capacity."""
        ring = segment.request_ring(0, 0)
        cap = ring.capacity
        consumer = segment.request_ring(0, 0)
        # Advance a full lap first so absolute positions exceed capacity.
        for i in range(cap):
            assert ring.try_push(OP_INSERT, i)
            assert consumer.try_pop()[1] == i
        for i in range(cap):
            assert ring.try_push(OP_INSERT, 100 + i)
        recovered = segment.request_ring(0, 0)
        recovered.recover()
        assert recovered.head == 2 * cap
        assert recovered.tail == cap
        got = [recovered.try_pop()[1] for _ in range(cap)]
        assert got == [100 + i for i in range(cap)]

    def test_recover_with_maximally_torn_final_slot(self, segment):
        """Writer killed between the final slot's payload write and its
        commit store: the payload (checksum included) is fully present
        but seq still reads free — recovery must treat it as free and
        hand the producer that exact position back."""
        ring = segment.request_ring(0, 0)
        for i in range(3):
            assert ring.try_push(OP_INSERT, i)
        # Hand-craft the "maximally torn" 4th push: complete payload and
        # valid checksum, seq left at the free value 3.
        off = ring._slot_offset(3)
        SLOT.pack_into(
            ring._buf, off, 3, OP_INSERT, 999, 7, 8, 9,
            slot_checksum(OP_INSERT, 999, 7, 8, 9),
        )
        recovered = segment.request_ring(0, 0)
        recovered.recover()
        assert recovered.head == 3  # the torn slot is invisible
        assert recovered.tail == 0
        audit = recovered.audit()
        assert audit.torn == 0 and audit.committed == 3
        # The successor's next push lands exactly there and reads back.
        assert recovered.try_push(OP_INSERT, 1000)
        for want in (0, 1, 2, 1000):
            assert recovered.try_pop()[1] == want

    def test_recover_torn_slot_at_wraparound_position(self, segment):
        """Same torn-final-slot window, but with the torn slot at the ring's
        physical index 0 after a wraparound — the modular arithmetic edge."""
        ring = segment.request_ring(0, 0)
        cap = ring.capacity
        consumer = segment.request_ring(0, 0)
        for i in range(cap):  # one full lap
            assert ring.try_push(OP_INSERT, i)
            assert consumer.try_pop()[1] == i
        # Torn write at absolute position `cap` (physical slot 0): payload
        # stored, seq still at the recycled/free value `cap`.
        off = ring._slot_offset(cap)
        SLOT.pack_into(
            ring._buf, off, cap, OP_INSERT, 555, 0, 0, 0,
            slot_checksum(OP_INSERT, 555, 0, 0, 0),
        )
        recovered = segment.request_ring(0, 0)
        recovered.recover()
        assert recovered.head == cap and recovered.tail == cap
        assert recovered.try_pop() is None
        assert recovered.audit().torn == 0

    def test_recover_rescans_when_a_commit_lands_mid_scan(self, segment):
        """recover() racing a live producer can observe an earlier slot
        free (pre-commit) while a later slot is already committed — no
        quiescent ring looks like that.  Accepting the scan would place
        the consumer tail past the earlier commit and silently drop its
        request (a respawned owner recovers request lanes under live
        loadgen traffic); recover must rescan until consistent."""
        ring = segment.request_ring(0, 0)
        assert ring.try_push(OP_INSERT, 7)
        assert ring.try_push(OP_INSERT, 8)
        off = ring._slot_offset(0)
        # Freeze the racy observation: rewind slot 0's seq to its
        # pre-commit (free) residue while slot 1 stays committed...
        struct.pack_into("<Q", ring._buf, off, 0)
        # ...and let "the producer's commit store" land mid-recover.
        repair = threading.Timer(
            0.01, struct.pack_into, ("<Q", ring._buf, off, 1)
        )
        repair.start()
        recovered = segment.request_ring(0, 0)
        recovered.recover()
        repair.join()
        assert recovered.tail == 0 and recovered.head == 2
        assert recovered.try_pop()[1] == 7  # nothing dropped
        assert recovered.try_pop()[1] == 8

    def test_recover_raises_when_no_scan_is_consistent(self, segment):
        """A *permanently* inconsistent ring (free below committed, with
        nobody finishing the commit) is corruption, not a race in
        flight: recover must fail loudly, never drop the slot."""
        ring = segment.request_ring(0, 0)
        assert ring.try_push(OP_INSERT, 7)
        assert ring.try_push(OP_INSERT, 8)
        struct.pack_into("<Q", ring._buf, ring._slot_offset(0), 0)
        fresh = segment.request_ring(0, 0)
        with pytest.raises(TornSlotError):
            fresh.recover()


@pytest.fixture
def small_segment():
    seg = ServiceSegment.create(
        shards=1, lanes=1, req_capacity=8, ev_capacity=8,
        journal_capacity=8, state_capacity=16,
    )
    yield seg
    seg.close()
    seg.unlink()


class TestJournalRing:
    def test_append_scan_roundtrip(self, small_segment):
        journal = small_segment.journal(0)
        for i in range(3):
            assert journal.try_append(
                OP_INSERT, 10 + i, clock=i, t0_ns=100 + i,
                lane=0, reqpos=i, evpos=i, epoch=1,
            )
        entries = journal.scan()
        assert [e.label for e in entries] == [10, 11, 12]
        assert [e.pos for e in entries] == [0, 1, 2]
        assert all(e.epoch == 1 for e in entries)

    def test_full_rejects_append(self, small_segment):
        journal = small_segment.journal(0)
        for i in range(journal.capacity):
            assert journal.try_append(OP_INSERT, i, 0, 0, 0, i, i, 1)
        assert not journal.try_append(OP_INSERT, 99, 0, 0, 0, 99, 99, 1)

    def test_truncate_recycles_and_wraps(self, small_segment):
        journal = small_segment.journal(0)
        cap = journal.capacity
        for i in range(cap):
            assert journal.try_append(OP_INSERT, i, 0, 0, 0, i, i, 1)
        journal.truncate_to(cap - 2)  # snapshot folded all but the last 2
        assert [e.label for e in journal.scan()] == [cap - 2, cap - 1]
        for i in range(cap - 2):  # refill the recycled slots (wraps)
            assert journal.try_append(OP_INSERT, 100 + i, 0, 0, 0, i, i, 2)
        assert [e.label for e in journal.scan()] == (
            [cap - 2, cap - 1] + [100 + i for i in range(cap - 2)]
        )

    def test_fence_raises_with_slot_still_free(self, small_segment):
        """A fenced zombie must not commit: the append raises *after* the
        payload write but the slot seq never flips, so a successor reusing
        the position sees a free slot."""
        journal = small_segment.journal(0)
        assert journal.try_append(OP_INSERT, 1, 0, 0, 0, 0, 0, 1)
        with pytest.raises(FencedOwnerError):
            journal.try_append(OP_DELETE, 2, 0, 0, 0, 1, 1, 1, fence=lambda: True)
        # The fenced payload is invisible: scan sees only the first entry...
        successor = small_segment.journal(0)
        successor.recover()
        assert [e.label for e in successor.scan()] == [1]
        # ... and the successor commits over the same position.
        assert successor.try_append(OP_DELETE, 3, 0, 0, 0, 1, 1, 2)
        assert [(e.label, e.epoch) for e in successor.scan()] == [(1, 1), (3, 2)]

    def test_scan_raises_on_torn_committed_slot(self, small_segment):
        journal = small_segment.journal(0)
        journal.try_append(OP_INSERT, 42, 0, 0, 0, 0, 0, 1)
        off = journal._slot_offset(0) + 16  # label field
        journal._buf[off] ^= 0xFF
        with pytest.raises(TornSlotError):
            journal.scan()
        assert journal.audit().torn == 1

    def test_recover_after_truncate_and_wrap(self, small_segment):
        journal = small_segment.journal(0)
        cap = journal.capacity
        for i in range(cap + 3):
            assert journal.try_append(OP_INSERT, i, 0, 0, 0, i, i, 1)
            if journal.head - journal.tail > 2:
                journal.truncate_to(journal.head - 2)
        recovered = small_segment.journal(0)
        recovered.recover()
        assert recovered.head == journal.head
        assert recovered.tail == journal.tail
        assert [e.label for e in recovered.scan()] == [
            e.label for e in journal.scan()
        ]

    def test_checksum_covers_every_field(self):
        base = journal_checksum(1, 2, 3, 4, 5, 6, 7, 8)
        for i in range(8):
            args = [1, 2, 3, 4, 5, 6, 7, 8]
            args[i] += 1
            assert journal_checksum(*args) != base


class TestShardSnapshot:
    def test_initialized_snapshot_is_empty_and_valid(self, small_segment):
        state = small_segment.snapshot(0).read()
        assert state.epoch == 0 and state.fold_pos == 0
        assert state.labels.size == 0
        assert state.watermarks == (0,)
        assert state.stopped_mask == 0

    def test_write_read_roundtrip(self, small_segment):
        snap = small_segment.snapshot(0)
        snap.write(
            epoch=3, clock=17, fold_pos=9, ev_head=4, cum_inserts=12,
            cum_deletes=5, cum_empties=1, stopped_mask=0b1,
            watermarks=[7], labels=np.array([5, 2, 9], dtype=np.int64),
        )
        state = small_segment.snapshot(0).read()
        assert (state.epoch, state.clock, state.fold_pos, state.ev_head) == (3, 17, 9, 4)
        assert (state.cum_inserts, state.cum_deletes, state.cum_empties) == (12, 5, 1)
        assert state.stopped_mask == 0b1 and state.watermarks == (7,)
        assert list(state.labels) == [5, 2, 9]

    def test_reader_falls_back_when_writer_died_mid_write(self, small_segment):
        """A writer killed mid-way through the inactive buffer leaves the
        previously committed snapshot readable."""
        snap = small_segment.snapshot(0)
        snap.write(
            epoch=1, clock=5, fold_pos=2, ev_head=1, cum_inserts=3,
            cum_deletes=1, cum_empties=0, stopped_mask=0,
            watermarks=[3], labels=np.array([8], dtype=np.int64),
        )
        # Scribble over the *inactive* buffer: a partially-written header
        # with a checksum that cannot validate.
        (active, _pad) = struct.unpack_from("<QQ", snap._buf, snap._offset)
        garbage = snap._buffer_offset(1 - int(active))
        snap._buf[garbage : garbage + 32] = b"\xde\xad" * 16
        state = small_segment.snapshot(0).read()
        assert state.epoch == 1 and list(state.labels) == [8]

    def test_reader_falls_back_when_flip_preceded_valid_data(self, small_segment):
        """Corrupt the *active* buffer (torn flip / bad checksum): the reader
        must fall back to the sibling instead of raising."""
        snap = small_segment.snapshot(0)
        snap.write(
            epoch=2, clock=1, fold_pos=0, ev_head=0, cum_inserts=1,
            cum_deletes=0, cum_empties=0, stopped_mask=0,
            watermarks=[1], labels=np.array([4], dtype=np.int64),
        )
        snap.write(
            epoch=2, clock=2, fold_pos=1, ev_head=1, cum_inserts=2,
            cum_deletes=0, cum_empties=0, stopped_mask=0,
            watermarks=[2], labels=np.array([4, 6], dtype=np.int64),
        )
        (active, _pad) = struct.unpack_from("<QQ", snap._buf, snap._offset)
        bad = snap._buffer_offset(int(active))
        snap._buf[bad + 8] ^= 0xFF  # corrupt the active header
        state = small_segment.snapshot(0).read()
        assert state.clock == 1 and list(state.labels) == [4]  # the older one

    def test_capacity_overflow_rejected(self, small_segment):
        snap = small_segment.snapshot(0)
        with pytest.raises(ValueError, match="exceeds state capacity"):
            snap.write(
                epoch=1, clock=0, fold_pos=0, ev_head=0, cum_inserts=0,
                cum_deletes=0, cum_empties=0, stopped_mask=0,
                watermarks=[0],
                labels=np.arange(snap.state_capacity + 1, dtype=np.int64),
            )
