"""Arrival-schedule construction: modes, determinism, striping."""

import numpy as np
import pytest

from repro.service.loadgen import ArrivalSchedule, ScheduleSpec
from repro.service.shm import OP_DELETE, OP_INSERT


class TestSpecValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown arrival mode"):
            ScheduleSpec(mode="warp")

    def test_trace_requires_path(self):
        with pytest.raises(ValueError, match="requires trace_path"):
            ScheduleSpec(mode="trace")

    def test_bursty_requires_rate(self):
        with pytest.raises(ValueError, match="requires a positive rate"):
            ScheduleSpec(mode="onoff", rate=0.0)

    def test_bad_burst_factor(self):
        with pytest.raises(ValueError, match="burst_factor"):
            ScheduleSpec(mode="diurnal", rate=10.0, burst_factor=1.0)

    def test_bad_burst_factor_onoff(self):
        with pytest.raises(ValueError, match="burst_factor"):
            ScheduleSpec(mode="onoff", rate=10.0, burst_factor=0.5)

    @pytest.mark.parametrize("mode", ["poisson", "trace"])
    def test_burst_factor_ignored_outside_bursty_modes(self, mode, tmp_path):
        """Regression: modes that never read burst_factor must not reject it.

        A trace replayed through the default spec (burst_factor unset by the
        caller, or <= 1 from a sweep grid) used to explode in __post_init__
        even though poisson/trace schedules ignore the field entirely.
        """
        kwargs = {"mode": mode, "ops": 10, "burst_factor": 1.0}
        if mode == "trace":
            trace = tmp_path / "arrivals.txt"
            trace.write_text("0.0\n0.001\n")
            kwargs["trace_path"] = str(trace)
        spec = ScheduleSpec(**kwargs)
        assert spec.build().ops == 10


class TestModes:
    def test_max_speed_is_all_zero(self):
        sched = ScheduleSpec(mode="poisson", ops=100, rate=0.0, seed=1).build()
        assert (sched.times_ns == 0).all()

    def test_poisson_rate_is_respected(self):
        sched = ScheduleSpec(mode="poisson", ops=20_000, rate=1000.0, seed=2).build()
        assert (np.diff(sched.times_ns) >= 0).all()
        # 20k arrivals at 1k/s should span ~20s.
        assert sched.span_s == pytest.approx(20.0, rel=0.1)

    def test_onoff_bursts(self):
        spec = ScheduleSpec(
            mode="onoff", ops=40_000, rate=1000.0, seed=3,
            on_s=0.5, off_s=0.5, burst_factor=8.0,
        )
        sched = spec.build()
        t = sched.times_ns / 1e9
        assert (np.diff(t) >= 0).all()
        phase = t % (spec.on_s + spec.off_s)
        on_count = int((phase < spec.on_s).sum())
        off_count = sched.ops - on_count
        # ON intensity is burst_factor^2 times OFF intensity.
        assert on_count > 10 * off_count

    def test_diurnal_wave(self):
        spec = ScheduleSpec(mode="diurnal", ops=40_000, rate=2000.0, seed=4, period_s=4.0)
        sched = spec.build()
        t = sched.times_ns / 1e9
        assert (np.diff(t) >= 0).all()
        # Rising half-period draws more arrivals than the falling one.
        phase = t % spec.period_s
        first_half = int((phase < spec.period_s / 2).sum())
        assert first_half > 1.3 * (sched.ops - first_half)

    def test_trace_mode_replays_and_tiles(self, tmp_path):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("# burst of three\n0.0\n0.001\n0.002\n")
        spec = ScheduleSpec(mode="trace", ops=9, trace_path=str(trace))
        sched = spec.build()
        assert sched.ops == 9
        assert (np.diff(sched.times_ns) >= 0).all()
        # The 3-arrival burst shape repeats three times.
        gaps = np.diff(sched.times_ns / 1e9)
        assert gaps[[0, 1, 3, 4, 6, 7]] == pytest.approx(0.001, rel=0.01)

    def test_empty_trace_rejected(self, tmp_path):
        trace = tmp_path / "empty.txt"
        trace.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no arrival times"):
            ScheduleSpec(mode="trace", ops=4, trace_path=str(trace)).build()


class TestDeterminismAndStriping:
    def test_rebuild_is_byte_identical(self):
        spec = ScheduleSpec(mode="onoff", ops=5000, prefill=512, rate=500.0, seed=42)
        a, b = spec.build(), spec.build()
        assert a.times_ns.tobytes() == b.times_ns.tobytes()
        assert a.insert_labels.tobytes() == b.insert_labels.tobytes()
        assert a.prefill_labels.tobytes() == b.prefill_labels.tobytes()

    def test_seed_changes_schedule(self):
        base = ScheduleSpec(mode="poisson", ops=1000, rate=100.0, seed=1).build()
        other = ScheduleSpec(mode="poisson", ops=1000, rate=100.0, seed=2).build()
        assert base.times_ns.tobytes() != other.times_ns.tobytes()

    @pytest.mark.parametrize("n_workers", [1, 2, 3, 7])
    def test_stripes_partition_the_schedule(self, n_workers):
        sched = ScheduleSpec(mode="poisson", ops=1001, rate=0.0, seed=5).build()
        stripes = [sched.stripe(w, n_workers) for w in range(n_workers)]
        merged = np.sort(np.concatenate(stripes))
        assert (merged == np.arange(sched.ops)).all()

    def test_schedule_independent_of_worker_count(self):
        """The offered traffic (op -> time, label) never depends on n_workers.

        Striping only selects *who* sends an op; rebuilding the schedule
        under any worker count yields the same global op table.
        """
        spec = ScheduleSpec(mode="diurnal", ops=2000, prefill=64, rate=800.0, seed=9)
        table = [spec.build().op(g) for g in range(spec.ops)]
        again = [spec.build().op(g) for g in range(spec.ops)]
        assert table == again

    def test_labels_are_a_compact_permutation(self):
        sched = ScheduleSpec(mode="poisson", ops=101, prefill=50, rate=0.0, seed=6).build()
        allocated = np.concatenate([sched.prefill_labels, sched.insert_labels])
        assert sorted(allocated.tolist()) == list(range(sched.label_universe))
        assert sched.n_inserts == 51  # ceil(101 / 2)

    def test_ops_alternate_insert_delete(self):
        sched = ScheduleSpec(mode="poisson", ops=6, rate=0.0, seed=0).build()
        kinds = [sched.op(g)[0] for g in range(6)]
        assert kinds == [OP_INSERT, OP_DELETE] * 3
        assert sched.op(1)[1] == -1  # deletes carry no label

    def test_stripe_bounds_checked(self):
        sched = ScheduleSpec(ops=10, seed=0).build()
        with pytest.raises(ValueError):
            sched.stripe(2, 2)
