"""Service-vs-simulator shape agreement on a tiny grid."""

import pytest

from repro.service.validate import compare_service_and_sim


@pytest.fixture(scope="module")
def comparison():
    # Two betas at the extremes: the rank-law gap between beta=0 and
    # beta=1 is large at 3 shards, so the shape check is robust to the
    # noise a tiny grid carries.
    return compare_service_and_sim(
        shards=3, workers=2, betas=(0.0, 1.0), ops=2000, prefill=384,
        seed=2, rate=4000.0,
    )


class TestShapeAgreement:
    def test_both_systems_rank_beta_zero_worst(self, comparison):
        assert comparison["worst_beta_agreement"]
        assert comparison["betas"][0] == 0.0
        by_beta = {row["beta"]: row for row in comparison["rows"]}
        assert by_beta[0.0]["service"]["mean_rank"] > by_beta[1.0]["service"]["mean_rank"]
        assert by_beta[0.0]["sim"]["mean_rank"] > by_beta[1.0]["sim"]["mean_rank"]

    def test_ordering_agreement_holds(self, comparison):
        assert comparison["ordering_agreement"]
        assert comparison["spearman_rho"] > 0

    def test_rows_carry_ks_diagnostics(self, comparison):
        for row in comparison["rows"]:
            assert 0.0 <= row["ks_stat"] <= 1.0
            assert 0.0 <= row["ks_p_value"] <= 1.0
            assert row["service"]["removals"] > 0
            assert row["sim"]["removals"] > 0

    def test_needs_two_betas(self):
        with pytest.raises(ValueError, match="at least two betas"):
            compare_service_and_sim(2, 1, betas=(0.5,), ops=100, prefill=16)
