"""Vectorized event merge / rank replay vs their per-event references.

The vectorized paths in ``repro.service.metrics`` must be *drop-in*
replacements: byte-identical outputs on any valid stream, including
cross-shard Lamport-clock ties and EV_EMPTY noise.
"""

import numpy as np
import pytest

from repro.service.metrics import merge_events, replay_ranks, replay_ranks_reference
from repro.service.shm import EV_DELETE, EV_EMPTY, EV_INSERT


def merge_events_reference(events_by_shard):
    """The old per-row merge loop, kept inline as the executable spec."""
    rows = []
    for shard, events in enumerate(events_by_shard):
        for ev, label, clock, t0, t1 in events:
            rows.append((shard, ev, label, clock, t0, t1))
    if not rows:
        return np.empty((0, 6), dtype=np.int64)
    arr = np.asarray(rows, dtype=np.int64)
    order = np.lexsort((arr[:, 0], arr[:, 3]))
    return arr[order]


def random_stream(seed, n_shards=4, n_ops=3000, tie_width=3, empty_rate=0.05):
    """A valid multi-shard stream: global linearization with clock ties.

    Ops are generated in one global order (every delete removes a label
    already present), then scattered to shards; ``tie_width`` consecutive
    ops share a Lamport clock, with shard ids ascending inside each tie
    group so the merged ``(clock, shard)`` order reproduces the
    generation order and the replay references stay valid.
    """
    rng = np.random.default_rng(seed)
    events_by_shard = [[] for _ in range(n_shards)]
    present = []
    next_label = 0
    g = 0
    while g < n_ops:
        group = min(tie_width, n_ops - g)
        clock = g // tie_width
        shards = np.sort(rng.integers(n_shards, size=group))
        for shard in shards:
            r = rng.random()
            if r < empty_rate:
                ev, label = EV_EMPTY, -1
            elif present and rng.random() < 0.5:
                ev = EV_DELETE
                label = present.pop(rng.integers(len(present)))
            else:
                ev, label = EV_INSERT, next_label
                present.append(next_label)
                next_label += 1
            t0 = 0 if rng.random() < 0.2 else int(rng.integers(1, 10**9))
            t1 = t0 + int(rng.integers(0, 10**6))
            events_by_shard[shard].append((ev, label, clock, t0, t1))
            g += 1
    return events_by_shard, next_label


class TestMergeEvents:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_byte_identical_to_reference(self, seed):
        events, _ = random_stream(seed)
        fast = merge_events(events)
        slow = merge_events_reference(events)
        assert fast.dtype == slow.dtype == np.int64
        assert fast.tobytes() == slow.tobytes()

    def test_empty_and_partially_empty(self):
        assert merge_events([]).shape == (0, 6)
        assert merge_events([[], []]).shape == (0, 6)
        events = [[], [(EV_INSERT, 0, 1, 0, 5)], []]
        fast = merge_events(events)
        assert fast.tobytes() == merge_events_reference(events).tobytes()
        assert fast[0, 0] == 1  # shard ids survive empty predecessors


class TestReplayRanks:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("sample_every", [1, 7, 16])
    def test_byte_identical_to_reference(self, seed, sample_every):
        events, universe = random_stream(seed)
        merged = merge_events(events)
        fast = replay_ranks(merged, universe, sample_every)
        slow = replay_ranks_reference(merged, universe, sample_every)
        assert fast.dtype == slow.dtype == np.int64
        assert fast.tobytes() == slow.tobytes()

    def test_many_chunks(self):
        # A stream several times the minimum chunk size crosses chunk
        # boundaries; ranks must still match the one-event-at-a-time spec.
        events, universe = random_stream(9, n_shards=2, n_ops=6000, tie_width=1)
        merged = merge_events(events)
        fast = replay_ranks(merged, universe, 4)
        slow = replay_ranks_reference(merged, universe, 4)
        assert fast.tobytes() == slow.tobytes()

    def test_empty_stream(self):
        merged = np.empty((0, 6), dtype=np.int64)
        assert replay_ranks(merged, 8).size == 0

    def test_bad_sample_every(self):
        merged = np.empty((0, 6), dtype=np.int64)
        with pytest.raises(ValueError, match="sample_every"):
            replay_ranks(merged, 8, 0)

    def test_label_outside_universe(self):
        events = [[(EV_INSERT, 5, 0, 0, 1)]]
        with pytest.raises(ValueError, match="label universe"):
            replay_ranks(merge_events(events), 4)

    def test_rank_is_one_based_global_minimum(self):
        # Insert 3 labels, delete the smallest: rank 1.  Delete the
        # largest of the remaining two: rank 2.
        events = [
            [
                (EV_INSERT, 2, 0, 0, 1),
                (EV_INSERT, 0, 1, 0, 1),
                (EV_INSERT, 1, 2, 0, 1),
                (EV_DELETE, 0, 3, 0, 1),
                (EV_DELETE, 2, 4, 0, 1),
            ]
        ]
        ranks = replay_ranks(merge_events(events), 3, sample_every=1)
        assert ranks.tolist() == [1, 2]
