"""Tests for distributional-linearizability comparisons and Appendix C."""

import numpy as np
import pytest

from repro.concurrent.linearizability import (
    DistributionalComparisonReport,
    _ks_distance,
    compare_rank_distributions,
    multiqueue_vs_sequential,
    stalled_lock_counterexample,
)
from repro.core.records import RankTrace


class TestKS:
    def test_identical_samples_zero(self):
        a = np.array([1, 2, 3, 4])
        assert _ks_distance(a, a) == 0.0

    def test_disjoint_samples_one(self):
        assert _ks_distance(np.array([1, 2]), np.array([10, 20])) == 1.0

    def test_symmetry(self):
        a = np.array([1, 3, 5, 9])
        b = np.array([2, 3, 8])
        assert _ks_distance(a, b) == pytest.approx(_ks_distance(b, a))


class TestCompare:
    def test_report_fields(self):
        a = RankTrace([1, 2, 3, 4, 5])
        b = RankTrace([1, 2, 3, 4, 50])
        report = compare_rank_distributions(a, b)
        assert report.concurrent_mean == pytest.approx(3.0)
        assert report.sequential_mean == pytest.approx(12.0)
        assert report.n_concurrent == 5
        assert not report.means_within(0.5)
        assert "conc_mean" in repr(report)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            compare_rank_distributions(RankTrace(), RankTrace([1]))

    def test_means_within(self):
        report = compare_rank_distributions(RankTrace([10] * 5), RankTrace([11] * 5))
        assert report.means_within(0.2)
        assert not report.means_within(0.05)


class TestMultiQueueVsSequential:
    def test_distributions_agree_for_benign_schedule(self):
        """The concurrent MultiQueue's rank distribution tracks the
        sequential process closely (Section 5's empirical claim)."""
        report = multiqueue_vs_sequential(
            n_threads=4, n_queues=8, prefill=10_000, ops_per_thread=1_000, seed=42
        )
        assert report.means_within(0.25)
        assert report.ks_statistic < 0.12


class TestStallCounterexample:
    def test_stall_inflates_rank_error(self):
        """Appendix C: with two queues locked by a stalled thread, rank
        error grows far beyond the baseline."""
        result = stalled_lock_counterexample(
            n_threads=4,
            n_queues=8,
            prefill=10_000,
            ops_per_thread=600,
            stall_fraction=0.9,
            seed=11,
        )
        baseline, stalled = result["baseline"], result["stalled"]
        assert stalled.mean_rank() > 5 * baseline.mean_rank()
        assert stalled.max_rank() > 2 * baseline.max_rank()

    def test_validation(self):
        with pytest.raises(ValueError):
            stalled_lock_counterexample(stall_fraction=0.0)
