"""Tests for MultiQueue operational variants: stickiness and lock-both."""

import numpy as np
import pytest

from repro.concurrent.audit import InvariantAuditor
from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.concurrent.recorder import OpRecorder
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload, run_throughput_experiment


def _drive(gen, engine):
    tid = engine.spawn(gen)
    engine.run()
    return engine.stats[tid].result


class TestValidation:
    def test_stickiness_validation(self):
        with pytest.raises(ValueError):
            ConcurrentMultiQueue(Engine(), 4, stickiness=0)

    def test_delete_locking_validation(self):
        with pytest.raises(ValueError):
            ConcurrentMultiQueue(Engine(), 4, delete_locking="bogus")

    def test_preemption_validation(self):
        with pytest.raises(ValueError):
            ConcurrentMultiQueue(Engine(), 4, preempt_prob=1.5)
        with pytest.raises(ValueError):
            ConcurrentMultiQueue(Engine(), 4, preempt_cycles=-1)


class TestStickiness:
    def test_round_trip(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=1, stickiness=8)
        _drive(model.insert_op(0, 5), eng)
        assert _drive(model.delete_min_op(0), eng)[0] == 5

    def test_sticky_inserts_cluster_in_one_queue(self):
        """With stickiness k, a lone thread lands k consecutive inserts
        in the same queue before re-randomizing."""
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 16, rng=2, stickiness=10)
        for v in range(10):
            _drive(model.insert_op(0, v), eng)
        sizes = sorted((len(h) for h in model._heaps), reverse=True)
        assert sizes[0] == 10

    def test_nonsticky_inserts_spread(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 16, rng=2, stickiness=1)
        for v in range(32):
            _drive(model.insert_op(0, v), eng)
        sizes = sorted((len(h) for h in model._heaps), reverse=True)
        assert sizes[0] < 10

    def test_no_lost_elements_under_contention(self):
        eng = Engine()
        rec = OpRecorder()
        model = ConcurrentMultiQueue(eng, 8, rng=3, stickiness=4, recorder=rec)
        model.prefill(np.arange(200))
        AlternatingWorkload(model, 4, 100, rng=4).spawn_on(eng)
        eng.run()
        assert model.total_size() == 200
        ins, rem = rec.counts()
        assert ins - rem == 200
        InvariantAuditor(model, recorder=rec, engine=eng).audit().raise_if_failed()

    def test_stickiness_costs_rank_quality(self):
        """Reusing queue choices correlates removals: rank error grows
        with stickiness (the locality/quality trade-off)."""

        def mean_rank(stickiness):
            eng = Engine()
            rec = OpRecorder()
            model = ConcurrentMultiQueue(
                eng, 8, rng=5, stickiness=stickiness, recorder=rec
            )
            model.prefill(np.random.default_rng(0).integers(2**40, size=8000))
            AlternatingWorkload(model, 4, 800, rng=6).spawn_on(eng)
            eng.run()
            return rec.rank_trace().mean_rank()

        assert mean_rank(32) > mean_rank(1)

    def test_stickiness_improves_throughput(self):
        """Sticky choices keep touching warm locks/lines: throughput up."""

        def tput(stickiness):
            def make(engine, rng):
                return ConcurrentMultiQueue(engine, 16, rng=rng, stickiness=stickiness)

            return run_throughput_experiment(make, 8, 150, prefill=2000, seed=7).throughput

        assert tput(16) > tput(1)


class TestPreemption:
    def test_preempted_run_still_conserves_elements(self):
        eng = Engine()
        rec = OpRecorder()
        model = ConcurrentMultiQueue(
            eng, 8, rng=21, recorder=rec, preempt_prob=0.1, preempt_cycles=10_000
        )
        model.prefill(np.arange(200))
        AlternatingWorkload(model, 4, 100, rng=22).spawn_on(eng)
        eng.run()
        assert model.total_size() == 200
        InvariantAuditor(model, recorder=rec, engine=eng).audit().raise_if_failed()

    def test_preemption_inflates_rank_error(self):
        def mean_rank(prob):
            eng = Engine()
            rec = OpRecorder()
            model = ConcurrentMultiQueue(
                eng, 8, rng=23, recorder=rec, preempt_prob=prob, preempt_cycles=50_000
            )
            model.prefill(np.random.default_rng(0).integers(2**40, size=8000))
            AlternatingWorkload(model, 4, 600, rng=24).spawn_on(eng)
            eng.run()
            return rec.rank_trace().mean_rank()

        assert mean_rank(0.05) > 1.3 * mean_rank(0.0)

    def test_preemption_slows_the_run(self):
        def sim_time(prob):
            eng = Engine()
            model = ConcurrentMultiQueue(
                eng, 8, rng=25, preempt_prob=prob, preempt_cycles=20_000
            )
            model.prefill(range(500))
            AlternatingWorkload(model, 4, 100, rng=26).spawn_on(eng)
            eng.run()
            return eng.now

        assert sim_time(0.2) > sim_time(0.0)


class TestLockBoth:
    def test_round_trip(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=8, delete_locking="both")
        _drive(model.insert_op(0, 9), eng)
        assert _drive(model.delete_min_op(0), eng)[0] == 9

    def test_empty_returns_none(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=9, delete_locking="both")
        assert _drive(model.delete_min_op(0), eng) is None

    def test_exact_comparison_under_locks(self):
        """Lock-both compares true tops, so with 2 queues it always
        removes the global minimum."""
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 2, beta=1.0, rng=10, delete_locking="both")
        values = [7, 1, 9, 3, 5]
        for v in values:
            _drive(model.insert_op(0, v), eng)
        # beta=1 with n=2: both queues locked whenever i != j; when i == j
        # it still pops that queue's top.  Drain and check global order is
        # near-sorted (exact when both queues were sampled).
        out = [_drive(model.delete_min_op(0), eng)[0] for _ in range(len(values))]
        assert sorted(out) == sorted(values)

    def test_no_lost_elements_and_no_deadlock(self):
        eng = Engine()
        rec = OpRecorder()
        model = ConcurrentMultiQueue(
            eng, 8, rng=11, delete_locking="both", recorder=rec
        )
        model.prefill(np.arange(300))
        AlternatingWorkload(model, 6, 150, rng=12).spawn_on(eng)
        eng.run()
        assert model.total_size() == 300
        InvariantAuditor(model, recorder=rec, engine=eng).audit().raise_if_failed()

    def test_lock_both_slower_than_better(self):
        """Locking two queues per deleteMin costs throughput — the reason
        Rihani et al. lock only the better queue."""

        def tput(mode):
            def make(engine, rng):
                return ConcurrentMultiQueue(engine, 16, rng=rng, delete_locking=mode)

            return run_throughput_experiment(make, 8, 150, prefill=2000, seed=13).throughput

        assert tput("both") < tput("better")
