"""Schedule fuzzing: correctness invariants under randomized cost models.

Varying the cost model perturbs the interleaving wholesale (every event
time shifts), so hypothesis-drawn cost multipliers act as a schedule
fuzzer.  Under *every* schedule each model must conserve elements,
produce a structurally valid linearized history, and return each element
at most once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrent import ConcurrentMultiQueue, KLSMPQ, OpRecorder, SprayListPQ
from repro.sim.cost_model import CostModel
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload

cost_strategy = st.builds(
    CostModel,
    cas=st.floats(1, 100),
    read=st.floats(1, 50),
    write=st.floats(1, 50),
    cache_transfer=st.floats(1, 500),
    lock_acquire=st.floats(1, 100),
    lock_release=st.floats(1, 50),
    try_fail=st.floats(1, 100),
    handoff=st.floats(1, 150),
    local_work=st.floats(1, 50),
    rng_draw=st.floats(1, 50),
    pq_base=st.floats(1, 100),
    pq_per_level=st.floats(1, 50),
)


def _stress(model_factory, cost, threads, seed):
    eng = Engine(cost)
    rec = OpRecorder()
    model = model_factory(eng, rec)
    prefill = 120
    model.prefill(np.random.default_rng(seed).integers(2**30, size=prefill))
    AlternatingWorkload(model, threads, 60, rng=seed).spawn_on(eng)
    eng.run()
    rec.validate()
    ins, rem = rec.counts()
    assert ins - rem == model.total_size()
    # No element returned twice: validate() already enforces it, but the
    # removed ids must also be unique as a direct check.
    removed = [e.eid for e in rec.events if e.kind == "del"]
    assert len(removed) == len(set(removed))


@settings(max_examples=15, deadline=None)
@given(cost=cost_strategy, threads=st.integers(1, 6), seed=st.integers(0, 1000))
def test_multiqueue_invariants_under_any_schedule(cost, threads, seed):
    _stress(
        lambda eng, rec: ConcurrentMultiQueue(eng, 8, beta=0.7, rng=seed, recorder=rec),
        cost,
        threads,
        seed,
    )


@settings(max_examples=10, deadline=None)
@given(cost=cost_strategy, threads=st.integers(1, 5), seed=st.integers(0, 1000))
def test_klsm_invariants_under_any_schedule(cost, threads, seed):
    _stress(
        lambda eng, rec: KLSMPQ(eng, relaxation=16, rng=seed, recorder=rec),
        cost,
        threads,
        seed,
    )


@settings(max_examples=10, deadline=None)
@given(cost=cost_strategy, threads=st.integers(1, 5), seed=st.integers(0, 1000))
def test_spraylist_invariants_under_any_schedule(cost, threads, seed):
    _stress(
        lambda eng, rec: SprayListPQ(eng, n_threads=threads, rng=seed, recorder=rec),
        cost,
        threads,
        seed,
    )
