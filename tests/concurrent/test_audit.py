"""Tests for the post-run invariant auditor."""

import numpy as np
import pytest

from repro.concurrent import (
    AuditError,
    ConcurrentMultiQueue,
    InvariantAuditor,
    OpRecorder,
)
from repro.sim.engine import Engine
from repro.sim.primitives import SimLock
from repro.sim.syscalls import Acquire, Delay
from repro.sim.workload import AlternatingWorkload

SEED = 13


def _run_model(n_queues=4, threads=2, ops=50, prefill=200):
    rec = OpRecorder()
    eng = Engine()
    model = ConcurrentMultiQueue(eng, n_queues, rng=SEED, recorder=rec)
    model.prefill(np.random.default_rng(SEED).integers(2**30, size=prefill))
    AlternatingWorkload(model, threads, ops, rng=SEED + 1).spawn_on(eng)
    eng.run()
    return model, rec, eng


class TestCleanRun:
    def test_clean_run_passes(self):
        model, rec, eng = _run_model()
        report = InvariantAuditor(model, recorder=rec, engine=eng).audit()
        assert report.ok
        assert report.lost == 0 and report.duplicated == 0
        assert report.inserted - report.removed == report.in_structure
        assert report.crashed_threads == 0
        report.raise_if_failed()  # no-op on success

    def test_summary_shape(self):
        model, rec, eng = _run_model()
        summary = InvariantAuditor(model, recorder=rec, engine=eng).audit().summary()
        assert summary["audit"] == "PASS"
        assert summary["lost"] == 0

    def test_requires_model_or_recorder(self):
        with pytest.raises(ValueError):
            InvariantAuditor()

    def test_recorder_only_audit(self):
        _, rec, _ = _run_model()
        report = InvariantAuditor(recorder=rec).audit()
        assert report.ok
        assert report.in_structure == 0  # no model to count


class TestCorruptionDetection:
    def test_lost_element_detected(self):
        model, rec, _ = _run_model()
        # Vanish one element behind the recorder's back.
        victim = next(h for h in model._heaps if len(h))
        victim.pop()
        report = InvariantAuditor(model, recorder=rec).audit()
        assert not report.ok
        assert report.lost == 1
        assert any("lost" in v for v in report.violations)
        with pytest.raises(AuditError):
            report.raise_if_failed()

    def test_duplicated_element_detected(self):
        model, rec, _ = _run_model()
        heap = next(h for h in model._heaps if len(h))
        entry = heap.peek()
        heap.push(entry.priority, entry.item)  # rogue duplicate
        model._publish_top(model._heaps.index(heap))
        report = InvariantAuditor(model, recorder=rec).audit()
        assert not report.ok
        assert report.duplicated >= 1

    def test_phantom_element_detected(self):
        model, rec, _ = _run_model()
        q = 0
        model._heaps[q].push(1, 999_999)  # never allocated by the recorder
        model._publish_top(q)
        report = InvariantAuditor(model, recorder=rec).audit()
        assert not report.ok
        assert any("never inserted" in v for v in report.violations)

    def test_removed_yet_present_detected(self):
        model, rec, _ = _run_model()
        removed = [e.eid for e in rec.events if e.kind != "ins"]
        assert removed
        q = 0
        model._heaps[q].push(0, removed[0])
        model._publish_top(q)
        report = InvariantAuditor(model, recorder=rec).audit()
        assert not report.ok
        assert any("both removed and still present" in v for v in report.violations)


class TestTopConsistency:
    def test_stale_top_without_holder_is_violation(self):
        model, rec, _ = _run_model()
        model._tops[0].value = -123  # nobody holds the lock
        report = InvariantAuditor(model, recorder=rec).audit()
        assert any(v.startswith("tops:") for v in report.violations)

    def test_stale_top_under_held_lock_is_note(self):
        model, rec, _ = _run_model()
        model._tops[0].value = -123
        model._locks[0].held_by = 7  # frozen mid-operation
        report = InvariantAuditor(model, recorder=rec).audit()
        assert not any(v.startswith("tops:") for v in report.violations)
        assert any(n.startswith("tops:") for n in report.notes)


class TestLockHygiene:
    def test_normal_finish_holding_lock_is_violation(self):
        lock = SimLock(name="leaked")

        def leaker():
            yield Acquire(lock)
            yield Delay(10)
            # returns without Release

        eng = Engine()
        eng.spawn(leaker(), name="leaker")
        eng.run()
        rec = OpRecorder()
        report = InvariantAuditor(recorder=rec, engine=eng).audit()
        assert any("finished normally while still holding" in v for v in report.violations)

    def test_crashed_holder_is_note_not_violation(self):
        lock = SimLock(name="l")

        def victim():
            yield Acquire(lock)
            yield Delay(1_000)

        eng = Engine()
        tid = eng.spawn(victim(), name="victim")
        eng.schedule_control(100.0, lambda e: e.kill(tid))
        eng.run()
        rec = OpRecorder()
        report = InvariantAuditor(recorder=rec, engine=eng).audit()
        assert report.crashed_threads == 1
        assert not any("finished normally" in v for v in report.violations)
        assert any("dead-holds" in n for n in report.notes)


class TestUnrecordedElements:
    def test_recorderless_model_elements_noted(self):
        eng = Engine()
        rec = OpRecorder()  # empty: the model below records nothing
        model = ConcurrentMultiQueue(eng, 2, rng=SEED)  # no recorder -> eid -1
        model.prefill([5, 3, 8])
        report = InvariantAuditor(model, recorder=rec).audit()
        assert report.ok
        assert any("eid=-1" in n for n in report.notes)
