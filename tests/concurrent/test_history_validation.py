"""Tests for history validation, including stress runs of every model."""

import numpy as np
import pytest

from repro.concurrent import (
    ConcurrentMultiQueue,
    KLSMPQ,
    LindenJonssonPQ,
    OpRecorder,
    SprayListPQ,
)
from repro.concurrent.recorder import HistoryError
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload


class TestValidateUnit:
    def test_valid_history_passes(self):
        rec = OpRecorder()
        e = rec.new_element(5)
        rec.record_insert(0.0, e)
        rec.record_remove(1.0, e)
        rec.validate()

    def test_unknown_eid(self):
        rec = OpRecorder()
        rec.record_insert(0.0, 3)
        with pytest.raises(HistoryError, match="unknown element"):
            rec.validate()

    def test_remove_before_insert(self):
        rec = OpRecorder()
        e = rec.new_element(1)
        rec.record_remove(0.0, e)
        with pytest.raises(HistoryError, match="absent"):
            rec.validate()

    def test_double_remove(self):
        rec = OpRecorder()
        e = rec.new_element(1)
        rec.record_insert(0.0, e)
        rec.record_remove(1.0, e)
        rec.record_remove(2.0, e)
        with pytest.raises(HistoryError, match="already removed"):
            rec.validate()

    def test_double_insert(self):
        rec = OpRecorder()
        e = rec.new_element(1)
        rec.record_insert(0.0, e)
        rec.record_insert(1.0, e)
        with pytest.raises(HistoryError, match="re-inserted"):
            rec.validate()

    def test_time_regression(self):
        rec = OpRecorder()
        a, b = rec.new_element(1), rec.new_element(2)
        rec.record_insert(5.0, a)
        rec.record_insert(1.0, b)
        with pytest.raises(HistoryError, match="precedes"):
            rec.validate()


class TestModelsProduceValidHistories:
    """Every concurrent model must produce a valid history under stress."""

    @pytest.mark.parametrize("which", ["mq", "mq-sticky", "mq-both", "lj", "klsm", "spray"])
    def test_stress_history_valid(self, which):
        eng = Engine()
        rec = OpRecorder()
        threads = 6
        if which == "mq":
            model = ConcurrentMultiQueue(eng, 8, rng=1, recorder=rec)
        elif which == "mq-sticky":
            model = ConcurrentMultiQueue(eng, 8, rng=1, recorder=rec, stickiness=8)
        elif which == "mq-both":
            model = ConcurrentMultiQueue(
                eng, 8, rng=1, recorder=rec, delete_locking="both"
            )
        elif which == "lj":
            model = LindenJonssonPQ(eng, rng=1, recorder=rec)
        elif which == "klsm":
            model = KLSMPQ(eng, relaxation=16, rng=1, recorder=rec)
        else:
            model = SprayListPQ(eng, n_threads=threads, rng=1, recorder=rec)
        model.prefill(np.random.default_rng(0).integers(2**30, size=500))
        AlternatingWorkload(model, threads, 200, rng=2).spawn_on(eng)
        eng.run()
        rec.validate()
        ins, rem = rec.counts()
        assert ins - rem == model.total_size()
