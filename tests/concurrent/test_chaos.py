"""Chaos-engine integration tests: MultiQueue under injected faults.

These cover the end-to-end robustness story: fault RNG decoupling,
graceful degradation of deletions against dead-held locks, lock-lease
recovery, the ``hold_locks_op`` ordering contract, and the acceptance
scenario (crash-stop + lock-holder stall with a clean audit).
"""

import numpy as np
import pytest

from repro.concurrent import ConcurrentMultiQueue, InvariantAuditor, OpRecorder
from repro.sim.engine import DeadlockError, Engine
from repro.sim.faults import (
    CrashStop,
    FaultInjector,
    FaultPlan,
    LockHolderPreempt,
    LockHolderStall,
)
from repro.sim.syscalls import Acquire, Delay, Release
from repro.sim.workload import AlternatingWorkload

SEED = 31


def _drive(gen, engine):
    tid = engine.spawn(gen)
    engine.run()
    return engine.stats[tid].result


class TestFaultRNGDecoupling:
    def test_legacy_preemption_does_not_perturb_queue_choices(self):
        """Satellite regression: enabling ``preempt_prob`` must leave the
        model RNG's queue-choice sequence untouched, so faulted and clean
        runs stay A/B-paired."""

        def placements(prob):
            eng = Engine()
            model = ConcurrentMultiQueue(
                eng, 16, rng=SEED, preempt_prob=prob, preempt_cycles=5_000
            )
            for v in range(64):
                _drive(model.insert_op(0, v), eng)
            return [len(h) for h in model._heaps]

        assert placements(0.0) == placements(0.5)

    def test_engine_faults_do_not_perturb_queue_choices(self):
        def placements(faulted):
            eng = Engine()
            model = ConcurrentMultiQueue(eng, 16, rng=SEED)
            if faulted:
                FaultInjector(
                    FaultPlan([LockHolderPreempt(prob=0.5, cycles=5_000)], rng=1)
                ).attach(eng)
            for v in range(64):
                _drive(model.insert_op(0, v), eng)
            return [len(h) for h in model._heaps]

        assert placements(False) == placements(True)

    def test_explicit_fault_rng_seed(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=SEED, fault_rng=99)
        assert model._fault_rng is not None


class TestGracefulDegradation:
    def test_delete_gives_up_against_dead_held_locks(self):
        """A crash leaves every queue lock dead-held; deleteMin must give
        up after ``max_delete_retries`` and report empty, not spin."""
        for locking in ("better", "both"):
            eng = Engine()
            model = ConcurrentMultiQueue(
                eng, 2, rng=SEED, delete_locking=locking, max_delete_retries=10
            )
            model.prefill([1, 2, 3, 4])

            def squatter():
                yield from model.hold_locks_op([0, 1], duration=1e12)

            tid = eng.spawn(squatter(), name="squatter")
            eng.schedule_control(200.0, lambda e, t=tid: e.kill(t))

            def deleter():
                yield Delay(500.0)  # start after the locks are dead-held
                result = yield from model.delete_min_op(1)
                return result

            assert _drive(deleter(), eng) is None, locking
            assert model.total_size() == 4

    def test_lock_both_empty_structure_returns_none_with_retries(self):
        eng = Engine()
        model = ConcurrentMultiQueue(
            eng, 4, rng=SEED, delete_locking="both", max_delete_retries=5
        )
        assert _drive(model.delete_min_op(0), eng) is None

    def test_backoff_slows_retries_under_contention(self):
        """Exponential backoff: a deleter hammering dead-held locks pays
        geometrically growing pauses, so wall-clock between attempts grows."""
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 2, rng=SEED, max_delete_retries=8)
        model.prefill([1, 2, 3, 4])  # both queues non-empty (every attempt tries a lock)

        def squatter():
            yield from model.hold_locks_op([0, 1], duration=1e12)

        tid = eng.spawn(squatter(), name="squatter")
        eng.schedule_control(100.0, lambda e, t=tid: e.kill(t))
        start_heap_time = 200.0

        def deleter():
            yield Delay(start_heap_time)
            result = yield from model.delete_min_op(0)
            return result

        assert _drive(deleter(), eng) is None
        base = eng.cost.backoff_base
        # 8 failures back off base*(1+2+4+8+16+32+64+64) minimum.
        assert eng.now - start_heap_time >= base * (2**7 - 1)

    def test_lease_recovers_from_crashed_holder(self, sanitized):
        """With leases, elements behind a crashed holder's lock become
        reachable again, the audit stays clean, and the run is race-free
        under the sanitizer (revocation is a proper release edge)."""
        rec = OpRecorder()
        eng = Engine()
        model = ConcurrentMultiQueue(
            eng, 2, rng=SEED, recorder=rec, lock_lease=10_000.0
        )
        sanitized(eng, model, seed=SEED)
        model.prefill([5, 6, 7, 8])

        def squatter():
            yield from model.hold_locks_op([0, 1], duration=1e12)

        tid = eng.spawn(squatter(), name="squatter")
        eng.schedule_control(100.0, lambda e, t=tid: e.kill(t))

        def late_deleter():
            yield Delay(50_000)  # past the lease
            results = []
            for _ in range(4):
                r = yield from model.delete_min_op(1)
                results.append(r)
            return results

        results = _drive(late_deleter(), eng)
        # Every element is recovered exactly once (order is per-queue,
        # not global — the MultiQueue is only distributionally ordered).
        assert sorted(r[0] for r in results if r) == [5, 6, 7, 8]
        assert model.lock_revocations() >= 1
        InvariantAuditor(model, recorder=rec, engine=eng).audit().raise_if_failed()


class TestHoldLocksContract:
    def test_out_of_order_blocking_acquirer_deadlocks_with_named_cycle(self):
        """The documented ordering contract: ``hold_locks_op`` takes locks
        in ascending index order; a blocking acquirer that disobeys forms
        a wait cycle which :class:`DeadlockError` names."""
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 2, rng=SEED)

        def disciplined():
            yield Delay(10)
            yield from model.hold_locks_op([0, 1], duration=1_000)

        def rogue():  # violates the ascending-order contract
            yield Acquire(model._locks[1])
            yield Delay(500)
            yield Acquire(model._locks[0])
            yield Release(model._locks[0])
            yield Release(model._locks[1])

        eng.spawn(disciplined(), name="disciplined")
        eng.spawn(rogue(), name="rogue")
        with pytest.raises(DeadlockError) as err:
            eng.run()
        exc = err.value
        assert set(exc.cycle) == {"disciplined", "rogue"}
        assert exc.waits["disciplined"] == "mq-lock-1"
        assert exc.waits["rogue"] == "mq-lock-0"
        assert "cycle:" in str(exc)

    def test_sorted_blocking_acquirers_do_not_deadlock(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=SEED)

        def adversary(indices, delay):
            yield Delay(delay)
            yield from model.hold_locks_op(indices, duration=500)

        eng.spawn(adversary([2, 0, 1], 0), name="a")
        eng.spawn(adversary([1, 3, 0], 5), name="b")
        eng.run()  # both sort their targets: no cycle possible
        assert all(lock.held_by is None for lock in model._locks)

    def test_hold_under_lease_release_is_best_effort(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 2, rng=SEED, lock_lease=1_000.0)

        def squatter():
            yield from model.hold_locks_op([0, 1], duration=50_000)

        def prober():
            yield Delay(10_000)
            result = yield from model.delete_min_op(1)
            return result

        model.prefill([3])
        eng.spawn(squatter(), name="squatter")
        eng.spawn(prober(), name="prober")
        eng.run()  # squatter's final Release observes the revocation
        assert model.lock_revocations() >= 1
        assert model.total_size() == 0


class TestAcceptanceScenario:
    def test_crash_and_stall_complete_with_clean_audit(self):
        """ISSUE acceptance: a chaos run combining a crash-stop and a
        targeted lock-holder stall completes without deadlock or livelock
        and the auditor reports zero lost/duplicated elements."""
        rec = OpRecorder()
        eng = Engine(progress_budget=5e6)
        model = ConcurrentMultiQueue(eng, 8, rng=SEED, recorder=rec)
        model.prefill(np.random.default_rng(SEED).integers(2**30, size=2_000))
        AlternatingWorkload(model, 4, 150, rng=SEED + 1).spawn_on(eng)
        injector = FaultInjector(
            FaultPlan(
                [
                    CrashStop(at=30_000.0, thread="worker-0"),
                    LockHolderStall(at=60_000.0, duration=150_000.0),
                ],
                rng=2,
            )
        ).attach(eng)
        eng.run()  # must not raise Deadlock/LivelockError
        assert injector.crashed_tids
        report = InvariantAuditor(model, recorder=rec, engine=eng).audit()
        report.raise_if_failed()
        assert report.lost == 0 and report.duplicated == 0
        assert report.crashed_threads == 1

    def test_both_locking_chaos_with_lease_conserves_elements(self):
        rec = OpRecorder()
        eng = Engine(progress_budget=5e6)
        model = ConcurrentMultiQueue(
            eng,
            8,
            rng=SEED,
            recorder=rec,
            delete_locking="both",
            lock_lease=50_000.0,
        )
        model.prefill(np.random.default_rng(SEED).integers(2**30, size=2_000))
        AlternatingWorkload(model, 4, 150, rng=SEED + 1).spawn_on(eng)
        FaultInjector(
            FaultPlan(
                [
                    CrashStop(at=30_000.0, thread="worker-1"),
                    LockHolderStall(at=60_000.0, duration=200_000.0, min_locks=2),
                    LockHolderPreempt(prob=0.01, cycles=20_000.0),
                ],
                rng=3,
            )
        ).attach(eng)
        eng.run()
        report = InvariantAuditor(model, recorder=rec, engine=eng).audit()
        report.raise_if_failed()
        assert report.lost == 0 and report.duplicated == 0
