"""Tests for the operation recorder and offline rank computation."""

import pytest

from repro.concurrent.recorder import OpRecorder


class TestRecording:
    def test_new_element_ids_sequential(self):
        rec = OpRecorder()
        assert rec.new_element(10) == 0
        assert rec.new_element(5) == 1
        assert rec.n_elements == 2

    def test_counts(self):
        rec = OpRecorder()
        e = rec.new_element(1)
        rec.record_insert(0.0, e)
        rec.record_remove(1.0, e)
        assert rec.counts() == (1, 1)

    def test_events_property_is_copy(self):
        rec = OpRecorder()
        e = rec.new_element(1)
        rec.record_insert(0.0, e)
        events = rec.events
        events.clear()
        assert len(rec.events) == 1


class TestRankTrace:
    def test_in_order_removals_rank_one(self):
        rec = OpRecorder()
        ids = [rec.new_element(p) for p in (3, 1, 2)]
        for e in ids:
            rec.record_insert(0.0, e)
        # Remove in priority order: 1, 2, 3.
        for e in (ids[1], ids[2], ids[0]):
            rec.record_remove(1.0, e)
        assert list(rec.rank_trace().ranks) == [1, 1, 1]
        assert rec.inversion_count() == 0

    def test_out_of_order_removal_pays_rank(self):
        rec = OpRecorder()
        ids = [rec.new_element(p) for p in (1, 2, 3)]
        for e in ids:
            rec.record_insert(0.0, e)
        rec.record_remove(1.0, ids[2])  # removes 3 while 1,2 present: rank 3
        rec.record_remove(2.0, ids[0])  # removes 1: rank 1
        rec.record_remove(3.0, ids[1])  # removes 2: rank 1
        assert list(rec.rank_trace().ranks) == [3, 1, 1]
        assert rec.inversion_count() == 2

    def test_equal_priorities_tie_break_by_eid(self):
        rec = OpRecorder()
        a = rec.new_element(5)
        b = rec.new_element(5)
        rec.record_insert(0.0, a)
        rec.record_insert(0.0, b)
        rec.record_remove(1.0, b)  # b sorts after a: rank 2
        rec.record_remove(2.0, a)
        assert list(rec.rank_trace().ranks) == [2, 1]

    def test_interleaved_insert_remove(self):
        rec = OpRecorder()
        a = rec.new_element(10)
        rec.record_insert(0.0, a)
        rec.record_remove(1.0, a)
        b = rec.new_element(1)
        rec.record_insert(2.0, b)
        rec.record_remove(3.0, b)
        assert list(rec.rank_trace().ranks) == [1, 1]

    def test_empty_recorder(self):
        rec = OpRecorder()
        assert len(rec.rank_trace()) == 0
        assert rec.inversion_count() == 0

    def test_repr(self):
        rec = OpRecorder()
        rec.new_element(1)
        assert "elements=1" in repr(rec)
