"""Tests for the baseline models: Lindén–Jonsson, k-LSM, SprayList."""

import numpy as np
import pytest

from repro.concurrent.klsm import KLSMPQ
from repro.concurrent.linden_jonsson import LindenJonssonPQ
from repro.concurrent.recorder import OpRecorder
from repro.concurrent.spraylist import SprayListPQ
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload, run_throughput_experiment


def _drive(gen, engine):
    tid = engine.spawn(gen)
    engine.run()
    return engine.stats[tid].result


class TestLindenJonsson:
    def test_round_trip(self):
        eng = Engine()
        rec = OpRecorder()
        model = LindenJonssonPQ(eng, rng=1, recorder=rec)
        _drive(model.insert_op(0, 5), eng)
        assert model.total_size() == 1
        result = _drive(model.delete_min_op(0), eng)
        assert result[0] == 5
        assert model.total_size() == 0

    def test_strict_semantics_zero_rank_error(self):
        """LJ is an exact queue: every removal has rank 1."""
        eng = Engine()
        rec = OpRecorder()
        model = LindenJonssonPQ(eng, rng=2, recorder=rec)
        model.prefill(np.random.default_rng(0).integers(1000, size=500))
        AlternatingWorkload(model, 4, 200, rng=3).spawn_on(eng)
        eng.run()
        trace = rec.rank_trace()
        assert trace.max_rank() == 1
        assert rec.inversion_count() == 0

    def test_delete_on_empty_returns_none(self):
        eng = Engine()
        model = LindenJonssonPQ(eng, rng=4)
        assert _drive(model.delete_min_op(0), eng) is None

    def test_head_cell_contention_recorded(self):
        eng = Engine()
        model = LindenJonssonPQ(eng, rng=5)
        model.prefill(range(500))
        AlternatingWorkload(model, 8, 60, rng=6).spawn_on(eng)
        eng.run()
        assert model._head.transfers > 100  # the hot line really is hot

    def test_does_not_scale(self):
        """Throughput at 8 threads is below ~2x of 1 thread (the paper's
        Figure 1 shape: LJ flattens/declines under contention)."""

        def lj(engine, rng):
            return LindenJonssonPQ(engine, rng=rng)

        t1 = run_throughput_experiment(lj, 1, 200, prefill=2000, seed=7).throughput
        t8 = run_throughput_experiment(lj, 8, 200, prefill=2000, seed=7).throughput
        assert t8 < 2.0 * t1


class TestKLSM:
    def test_validation(self):
        with pytest.raises(ValueError):
            KLSMPQ(Engine(), relaxation=0)

    def test_round_trip(self):
        eng = Engine()
        model = KLSMPQ(eng, relaxation=8, rng=1)
        _drive(model.insert_op(0, 9), eng)
        result = _drive(model.delete_min_op(0), eng)
        assert result[0] == 9
        assert model.total_size() == 0

    def test_local_component_merges_when_full(self):
        eng = Engine()
        model = KLSMPQ(eng, relaxation=4, rng=2)
        for v in range(10):
            _drive(model.insert_op(0, v), eng)
        # After exceeding relaxation=4, some elements moved to shared.
        assert len(model._shared) > 0
        assert model.total_size() == 10

    def test_rank_error_bounded_by_relaxation(self):
        """Rank slack comes from elements hidden in other threads'
        locals: bounded by ~k * threads."""
        eng = Engine()
        rec = OpRecorder()
        k, threads = 16, 4
        model = KLSMPQ(eng, relaxation=k, rng=3, recorder=rec)
        model.prefill(np.random.default_rng(1).integers(10**6, size=2000))
        AlternatingWorkload(model, threads, 300, rng=4).spawn_on(eng)
        eng.run()
        trace = rec.rank_trace()
        assert trace.max_rank() <= k * threads + threads + 1

    def test_delete_on_empty_returns_none(self):
        eng = Engine()
        model = KLSMPQ(eng, rng=5)
        assert _drive(model.delete_min_op(0), eng) is None

    def test_no_lost_elements(self):
        eng = Engine()
        rec = OpRecorder()
        model = KLSMPQ(eng, relaxation=32, rng=6, recorder=rec)
        model.prefill(range(100))
        AlternatingWorkload(model, 4, 100, rng=7).spawn_on(eng)
        eng.run()
        assert model.total_size() == 100


class TestSprayList:
    def test_validation(self):
        with pytest.raises(ValueError):
            SprayListPQ(Engine(), n_threads=0)

    def test_round_trip(self):
        eng = Engine()
        model = SprayListPQ(eng, n_threads=1, rng=1)
        _drive(model.insert_op(0, 3), eng)
        result = _drive(model.delete_min_op(0), eng)
        assert result[0] == 3

    def test_spray_width_grows_with_threads(self):
        eng = Engine()
        w1 = SprayListPQ(eng, n_threads=1).spray_width
        w16 = SprayListPQ(eng, n_threads=16).spray_width
        assert w16 > w1

    def test_rank_error_within_spray_window(self):
        eng = Engine()
        rec = OpRecorder()
        threads = 4
        model = SprayListPQ(eng, n_threads=threads, rng=2, recorder=rec)
        model.prefill(np.random.default_rng(2).integers(10**6, size=2000))
        AlternatingWorkload(model, threads, 300, rng=3).spawn_on(eng)
        eng.run()
        trace = rec.rank_trace()
        assert trace.max_rank() <= model.spray_width + threads

    def test_delete_on_empty_returns_none(self):
        eng = Engine()
        model = SprayListPQ(eng, n_threads=2, rng=4)
        assert _drive(model.delete_min_op(0), eng) is None
