"""Tests for the concurrent MultiQueue model."""

import numpy as np
import pytest

from repro.concurrent.multiqueue import ConcurrentMultiQueue
from repro.concurrent.recorder import OpRecorder
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload


def _drive(gen, engine):
    """Spawn a single op generator and run it to completion."""
    tid = engine.spawn(gen)
    engine.run()
    return engine.stats[tid].result


class TestConstruction:
    def test_validation(self):
        eng = Engine()
        with pytest.raises(ValueError):
            ConcurrentMultiQueue(eng, 0)
        with pytest.raises(ValueError):
            ConcurrentMultiQueue(eng, 4, beta=1.5)

    def test_prefill_distributes(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=1)
        model.prefill(range(100))
        assert model.total_size() == 100
        assert sum(len(h) for h in model._heaps) == 100


class TestSingleThreadOps:
    def test_insert_then_delete_round_trip(self):
        eng = Engine()
        rec = OpRecorder()
        model = ConcurrentMultiQueue(eng, 4, rng=2, recorder=rec)
        eid = _drive(model.insert_op(0, 42), eng)
        assert model.total_size() == 1
        result = _drive(model.delete_min_op(0), eng)
        assert result == (42, eid)
        assert model.total_size() == 0
        assert list(rec.rank_trace().ranks) == [1]

    def test_delete_on_empty_returns_none(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=3)
        assert _drive(model.delete_min_op(0), eng) is None

    def test_top_cells_track_heap_tops(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 2, rng=4)
        for v in (7, 3, 9, 1):
            _drive(model.insert_op(0, v), eng)
        for q in range(2):
            heap = model._heaps[q]
            expected = heap.peek().priority if len(heap) else None
            assert model._tops[q].value == expected

    def test_single_choice_beta_zero(self):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, beta=0.0, rng=5)
        model.prefill(range(40))
        result = _drive(model.delete_min_op(0), eng)
        assert result is not None

    def test_hold_locks_blocks_queues(self):
        """While the adversary holds locks 0..1, deletions still complete
        via other queues."""
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 4, rng=6)
        model.prefill(range(100))

        def victim():
            out = []
            for _ in range(10):
                res = yield from model.delete_min_op(0)
                out.append(res)
            return out

        eng.spawn(model.hold_locks_op([0, 1], duration=1e7))
        vid = eng.spawn(victim())
        eng.run()
        results = eng.stats[vid].result
        assert all(r is not None for r in results)
        # Everything was popped from unlocked queues 2..3.
        assert model._locks[0].acquisitions <= 1  # only the adversary
        assert model._locks[1].acquisitions <= 1


class TestConcurrentBehaviour:
    def test_no_lost_elements_under_contention(self, sanitized):
        eng = Engine()
        rec = OpRecorder()
        model = ConcurrentMultiQueue(eng, 4, rng=7, recorder=rec)
        sanitized(eng, model, seed=7)  # race-detect the whole run
        model.prefill(np.arange(100))
        AlternatingWorkload(model, 6, 80, rng=8).spawn_on(eng)
        eng.run()
        ins, rem = rec.counts()
        assert ins == 100 + 6 * 80
        assert rem == 6 * 80
        assert model.total_size() == 100

    def test_rank_quality_order_n(self):
        eng = Engine()
        rec = OpRecorder()
        n_queues = 8
        model = ConcurrentMultiQueue(eng, n_queues, beta=1.0, rng=9, recorder=rec)
        model.prefill(np.random.default_rng(1).integers(2**40, size=10000))
        AlternatingWorkload(model, 4, 1500, rng=10).spawn_on(eng)
        eng.run()
        trace = rec.rank_trace()
        assert trace.mean_rank() < 3 * n_queues

    def test_lock_failure_ratio_bounded(self, sanitized):
        eng = Engine()
        model = ConcurrentMultiQueue(eng, 16, rng=11)
        sanitized(eng, model, seed=11)  # race-detect the whole run
        model.prefill(range(1000))
        AlternatingWorkload(model, 8, 100, rng=12).spawn_on(eng)
        eng.run()
        assert 0 <= model.lock_failure_ratio() < 0.5

    def test_repr(self):
        eng = Engine()
        assert "n_queues=4" in repr(ConcurrentMultiQueue(eng, 4, rng=1))
