#!/usr/bin/env python
"""Earliest-deadline-first scheduling on a relaxed priority queue.

Priority schedulers are the paper's motivating application (Galois-style
task runtimes schedule work "roughly by priority").  This example runs
an earliest-deadline-first (EDF) job scheduler where the ready queue is
a MultiQueue: each pop may return a job whose deadline is not quite the
earliest.  Theorem 1 says the rank error is O(n_queues), so with any
slack in the deadlines the miss rate barely moves — which is exactly
what makes the relaxation practical.

Run:  python examples/deadline_scheduler.py
"""

import numpy as np

from repro.core.multiqueue import MultiQueue
from repro.pqueues import BinaryHeap

N_JOBS = 40_000
SERVICE_PER_TICK = 4  # jobs the scheduler can run per slot
BURST_SIZE = 280  # jobs arriving in one burst
BURST_EVERY = 80  # ticks between bursts (bursts outpace service briefly)
SLACK_LO, SLACK_HI = 20, 80  # deadline slack range, in ticks


def run_scheduler(queue, seed: int = 1):
    """Bursty arrivals build real backlogs; count misses and lateness.

    Each burst of jobs takes ~BURST_SIZE/SERVICE_PER_TICK = 60 ticks to
    clear, against deadline slacks of 30-90 ticks — so pop *order* inside
    the backlog decides which jobs make their deadlines.
    """
    rng = np.random.default_rng(seed)
    misses = 0
    total_lateness = 0
    arrived = 0
    time = 0
    while arrived < N_JOBS or len(queue):
        if time % BURST_EVERY == 0 and arrived < N_JOBS:
            burst = min(BURST_SIZE, N_JOBS - arrived)
            slacks = rng.integers(SLACK_LO, SLACK_HI, size=burst)
            for slack in slacks:
                _push(queue, time + int(slack))
            arrived += burst
        for _ in range(SERVICE_PER_TICK):
            if not len(queue):
                break
            deadline = _pop(queue).priority
            if deadline < time:
                misses += 1
                total_lateness += time - deadline
        time += 1
    return misses, total_lateness


def _push(queue, priority):
    if hasattr(queue, "insert"):
        queue.insert(priority)
    else:
        queue.push(priority)


def _pop(queue):
    return queue.delete_min() if hasattr(queue, "delete_min") else queue.pop()


def main() -> None:
    print(
        f"EDF scheduler: {N_JOBS} jobs in bursts of {BURST_SIZE} every "
        f"{BURST_EVERY} ticks,\nservice {SERVICE_PER_TICK}/tick, deadline "
        f"slack {SLACK_LO}-{SLACK_HI} ticks\n"
    )
    print(f"{'ready queue':>24}  {'deadline misses':>15}  {'miss rate':>9}  {'avg lateness':>12}")
    exact_misses, _ = run_scheduler(BinaryHeap())
    print(
        f"{'exact heap':>24}  {exact_misses:>15}  "
        f"{100 * exact_misses / N_JOBS:>8.2f}%  {'-':>12}"
    )
    for beta in (1.0, 0.5, 0.25):
        mq = MultiQueue(8, beta=beta, rng=9)
        misses, lateness = run_scheduler(mq)
        avg_late = lateness / misses if misses else 0.0
        print(
            f"{f'MultiQueue beta={beta}':>24}  {misses:>15}  "
            f"{100 * misses / N_JOBS:>8.2f}%  {avg_late:>12.2f}"
        )
    print(
        "\nthe exact scheduler just barely makes every deadline; the relaxed\n"
        "queue converts its O(n/beta^2) rank error into a sub-percent miss\n"
        "rate - the paper's 'priority inversions can be offset by slack'\n"
        "argument, live, and the price grows smoothly as beta shrinks."
    )


if __name__ == "__main__":
    main()
