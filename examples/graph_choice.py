#!/usr/bin/env python
"""The Section 6 graph choice process: expansion decides rank quality.

Labels arrive at random vertices of a graph; each removal samples a
random *edge* and removes the better endpoint top.  The paper
conjectures that good expansion recovers the two-choice guarantees; this
example runs the process over a spectrum of graphs and prints the rank
profile alongside the unlabelled graphical-allocation gap.

Run:  python examples/graph_choice.py
"""

from repro.ballsbins.graphical import GraphicalAllocation
from repro.graphs.choice_process import GraphChoiceProcess
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
    torus_graph,
)

N = 36
PREFILL = 10_000
STEPS = 10_000


def main() -> None:
    graphs = [
        ("cycle (worst expansion)", cycle_graph(N)),
        ("torus 6x6", torus_graph(6, 6)),
        ("random 4-regular (expander)", random_regular_graph(N, 4, rng=1)),
        ("complete (= two-choice)", complete_graph(N)),
    ]
    print(f"graph choice process, n={N} vertices, {STEPS} steady-state removals\n")
    print(f"{'graph':>28}  {'mean rank':>9}  {'max rank':>8}  {'alloc gap':>9}")
    for name, graph in graphs:
        proc = GraphChoiceProcess(graph, PREFILL + STEPS, rng=7)
        trace = proc.run_steady_state(PREFILL, STEPS)
        alloc = GraphicalAllocation(N, list(graph.edges()), rng=7)
        alloc.insert_many(20_000)
        print(
            f"{name:>28}  {trace.mean_rank():>9.1f}  {trace.max_rank():>8}  "
            f"{alloc.gap():>9.2f}"
        )
    print(
        "\nbetter expansion -> smaller ranks; the complete graph matches the\n"
        "paper's sequential two-choice process (mean rank ~ n)."
    )


if __name__ == "__main__":
    main()
