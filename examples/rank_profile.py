#!/usr/bin/env python
"""Rank-cost anatomy of the (1+beta) process: the paper's theory, live.

Runs the instrumented sequential process and prints:

* mean / p99 / max rank for a beta sweep (Theorem 1's O(n/beta^2));
* the time-uniformity contrast with the single-choice process
  (Theorem 6's divergence);
* the Gamma potential of the exponential process staying O(n)
  (Theorem 3's supermartingale).

Run:  python examples/rank_profile.py
"""

from repro.analysis.rank_series import time_uniformity
from repro.core.exponential import ExponentialTopProcess
from repro.core.potential import PotentialTracker, recommended_alpha
from repro.core.process import SequentialProcess
from repro.core.single_choice import SingleChoiceProcess

N = 16
PREFILL = 20_000
STEPS = 20_000


def main() -> None:
    print(f"sequential (1+beta) process, n={N}, steady state, {STEPS} removals\n")

    print(f"{'beta':>5}  {'mean rank':>9}  {'p99':>6}  {'max':>6}  {'n/beta^2':>9}")
    for beta in (1.0, 0.75, 0.5, 0.25):
        proc = SequentialProcess(N, PREFILL + STEPS, beta=beta, rng=3)
        trace = proc.run_steady_state(PREFILL, STEPS)
        print(
            f"{beta:>5.2f}  {trace.mean_rank():>9.2f}  {trace.quantile(0.99):>6.0f}  "
            f"{trace.max_rank():>6}  {N / beta**2:>9.0f}"
        )

    print("\ntime-uniformity (Theorem 1) vs divergence (Theorem 6):")
    two = SequentialProcess(N, PREFILL + STEPS, beta=1.0, rng=4).run_steady_state(
        PREFILL, STEPS
    )
    one = SingleChoiceProcess(N, PREFILL + STEPS, rng=4).run_steady_state(PREFILL, STEPS)
    for name, trace in (("two-choice", two), ("single-choice", one)):
        rep = time_uniformity(trace)
        verdict = "time-uniform" if rep.is_uniform() else "DIVERGING"
        print(
            f"  {name:>13}: early mean {rep.early_mean:8.2f}  late mean "
            f"{rep.late_mean:8.2f}  ratio {rep.growth_ratio:5.2f}  -> {verdict}"
        )

    print("\nGamma potential of the exponential process (Theorem 3):")
    proc = ExponentialTopProcess(N, beta=1.0, rng=5)
    tracker = PotentialTracker(proc, alpha=recommended_alpha(1.0))
    series = tracker.run(20_000, sample_every=400)
    g = series.gamma_over_n(N)
    print(
        f"  Gamma(t)/n over {series.steps[-1]} steps: mean {g.mean():.3f}, "
        f"max {g.max():.3f}  (theory: O(1); floor is 2.0 by AM-GM)"
    )


if __name__ == "__main__":
    main()
