#!/usr/bin/env python
"""Single-source shortest paths with relaxed priority queues (Figure 3).

Reproduces the paper's headline application at example scale:

1. exact sequential Dijkstra on a synthetic road network;
2. sequential Dijkstra driven by a relaxed MultiQueue — same distances,
   measurable extra work (stale pops);
3. simulated *parallel* Dijkstra for several thread counts and beta
   values, showing the relaxation buying real (simulated) speedup.

Run:  python examples/dijkstra_sssp.py
"""

import numpy as np

from repro.concurrent import ConcurrentMultiQueue
from repro.core.multiqueue import MultiQueue
from repro.graphs import dijkstra, parallel_dijkstra, road_network

GRAPH_SIZE = 2_000
SEED = 11


def main() -> None:
    graph = road_network(GRAPH_SIZE, rng=SEED)
    print(
        f"synthetic road network: {graph.n_vertices} vertices, "
        f"{graph.n_edges} edges, avg degree {graph.average_degree():.2f}"
    )

    # 1. Exact baseline.
    exact = dijkstra(graph, 0)
    print(
        f"\nexact Dijkstra:   pops={exact.pops}  stale={exact.stale_pops} "
        f"({100 * exact.stale_pops / exact.pops:.1f}% lazy-deletion rework)"
    )

    # 2. Same computation through a relaxed MultiQueue.
    relaxed = dijkstra(graph, 0, pq=MultiQueue(8, beta=1.0, rng=3))
    assert np.array_equal(relaxed.dist, exact.dist), "distances must be exact"
    print(
        f"relaxed Dijkstra: pops={relaxed.pops}  stale={relaxed.stale_pops} "
        f"({100 * relaxed.stale_pops / relaxed.pops:.1f}% rework) — "
        "distances identical, relaxation only costs extra pops"
    )

    # 3. Simulated parallel runs (Figure 3's experiment, example scale).
    print("\nsimulated parallel relaxed Dijkstra (lower Mcycles = faster):")
    print(f"{'threads':>8}  {'beta':>5}  {'Mcycles':>8}  {'stale%':>7}")
    for threads in (1, 2, 4, 8):
        for beta in (1.0, 0.5):

            def make(engine, rng, threads=threads, beta=beta):
                return ConcurrentMultiQueue(
                    engine, n_queues=2 * threads, beta=beta, rng=rng
                )

            res = parallel_dijkstra(graph, 0, make, n_threads=threads, seed=SEED)
            assert np.array_equal(res.dist, exact.dist)
            print(
                f"{threads:>8}  {beta:>5.2f}  {res.sim_time / 1e6:>8.2f}  "
                f"{100 * res.wasted_fraction:>6.1f}%"
            )
    print("\npaper shape: time drops with threads; beta=0.5 edges out beta=1.")


if __name__ == "__main__":
    main()
