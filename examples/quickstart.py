#!/usr/bin/env python
"""Quickstart: the (1+beta) MultiQueue as a relaxed priority queue.

Shows the basic API — insert / delete_min — and measures what the
relaxation actually costs: the rank of each returned element among
everything still stored.  Theorem 1 of the paper says that cost is
O(n_queues / beta^2) in expectation, no matter how long you run.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MultiQueue

N_QUEUES = 8
N_ITEMS = 50_000


def main() -> None:
    rng = np.random.default_rng(42)
    mq = MultiQueue(n_queues=N_QUEUES, beta=1.0, rng=7)

    print(f"MultiQueue with {N_QUEUES} internal queues, beta={mq.beta}")
    print(f"inserting {N_ITEMS} random priorities ...")
    for priority in rng.integers(10**9, size=N_ITEMS):
        mq.insert(int(priority))

    # Drain a few elements and show what came out versus the true min.
    print("\nfirst 10 deletions (relaxed) vs the exact minimum at that moment:")
    for i in range(10):
        true_min = mq.peek_best().priority
        entry = mq.delete_min()
        marker = "  <- exact" if entry.priority == true_min else ""
        print(f"  delete_min() = {entry.priority:>10}   true min = {true_min:>10}{marker}")

    # Measure the mean rank over a long drain, the paper's cost notion.
    print(f"\ndraining the rest and measuring rank cost ...")
    present = sorted(e.priority for q in mq.queues for e in _entries(q))
    total_rank, removals = 0, 0
    import bisect

    while len(mq):
        got = mq.delete_min().priority
        idx = bisect.bisect_left(present, got)
        total_rank += idx + 1
        del present[idx]
        removals += 1

    mean_rank = total_rank / removals
    print(f"removals: {removals}")
    print(f"mean rank of removed elements: {mean_rank:.2f}")
    print(f"theory (Theorem 1): O(n) = O({N_QUEUES}) — observed {mean_rank:.2f}")


def _entries(queue):
    # Non-destructive inspection via each queue's internal drain copy.
    import copy

    return list(copy.deepcopy(queue).drain())


if __name__ == "__main__":
    main()
