#!/usr/bin/env python
"""Branch-and-bound with a relaxed frontier (the Karp–Zhang motivation).

The first relaxed priority queue (Karp & Zhang 1993) was built exactly
for this: parallel best-first branch-and-bound tolerates exploring a
node that is not *the* best open node — it merely wastes a little work.
This example solves a 0/1 knapsack instance by best-first search with

* an exact priority queue (baseline node count), and
* a (1+beta) MultiQueue frontier for several beta,

and reports how many extra nodes the relaxation explores — the
sequential analogue of the 'extra work vs. parallelism' trade the paper
discusses for Dijkstra.

Run:  python examples/branch_and_bound.py
"""

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.multiqueue import MultiQueue
from repro.pqueues import BinaryHeap


@dataclass(frozen=True)
class Node:
    level: int
    value: int
    weight: int


def make_instance(n_items: int = 26, seed: int = 5) -> Tuple[List[int], List[int], int]:
    rng = np.random.default_rng(seed)
    values = [int(v) for v in rng.integers(20, 100, size=n_items)]
    weights = [int(w) for w in rng.integers(5, 40, size=n_items)]
    capacity = int(sum(weights) * 0.4)
    return values, weights, capacity


def fractional_bound(node: Node, values, weights, capacity) -> float:
    """Classic fractional-knapsack upper bound from this node."""
    remaining = capacity - node.weight
    bound = float(node.value)
    for i in range(node.level, len(values)):
        if weights[i] <= remaining:
            remaining -= weights[i]
            bound += values[i]
        else:
            bound += values[i] * remaining / weights[i]
            break
    return bound


def solve(queue, values, weights, capacity) -> Tuple[int, int]:
    """Best-first branch and bound; returns (best value, explored nodes)."""
    ratio_order = sorted(
        range(len(values)), key=lambda i: -values[i] / weights[i]
    )
    values = [values[i] for i in ratio_order]
    weights = [weights[i] for i in ratio_order]

    best = 0
    explored = 0
    root = Node(0, 0, 0)
    # Min-queue: push negated bound so the most promising node pops first.
    _push(queue, -fractional_bound(root, values, weights, capacity), root)
    while len(queue):
        entry = _pop(queue)
        node: Node = entry.item
        explored += 1
        if -entry.priority <= best:  # bound can't beat the incumbent
            continue
        if node.level == len(values):
            continue
        # Branch: take item `level` (if it fits), or skip it.
        take = Node(
            node.level + 1, node.value + values[node.level], node.weight + weights[node.level]
        )
        if take.weight <= capacity:
            best = max(best, take.value)
            bound = fractional_bound(take, values, weights, capacity)
            if bound > best:
                _push(queue, -bound, take)
        skip = Node(node.level + 1, node.value, node.weight)
        bound = fractional_bound(skip, values, weights, capacity)
        if bound > best:
            _push(queue, -bound, skip)
    return best, explored


def _push(queue, priority, item):
    if hasattr(queue, "insert"):
        queue.insert(priority, item)
    else:
        queue.push(priority, item)


def _pop(queue):
    return queue.delete_min() if hasattr(queue, "delete_min") else queue.pop()


def main() -> None:
    values, weights, capacity = make_instance()
    print(f"0/1 knapsack: {len(values)} items, capacity {capacity}")

    exact_value, exact_nodes = solve(BinaryHeap(), values, weights, capacity)
    print(f"\nexact best-first:      optimum={exact_value}  explored={exact_nodes} nodes")

    print("\nrelaxed (MultiQueue) frontier — same optimum, extra exploration:")
    print(f"{'beta':>5}  {'optimum':>8}  {'explored':>9}  {'extra work':>10}")
    for beta in (1.0, 0.5, 0.25):
        value, nodes = solve(
            MultiQueue(8, beta=beta, rng=17), values, weights, capacity
        )
        assert value == exact_value, "branch and bound must stay exact"
        extra = nodes / exact_nodes - 1.0
        print(f"{beta:>5.2f}  {value:>8}  {nodes:>9}  {100 * extra:>9.1f}%")

    print(
        "\nKarp-Zhang's point: the relaxation's extra nodes are the price of a\n"
        "contention-free parallel frontier - and Theorem 1 bounds that price."
    )


if __name__ == "__main__":
    main()
