"""Vec-theory: the paper's theorems re-verified with replica-wide sweeps.

The vector engine makes it cheap to run dozens of independent replicas
per parameter point, so the theory claims get re-checked here with far
wider seed coverage than the per-seed reference benches:

* **Theorem 1 / Corollary 2** — mean removed rank stays inside the
  ``n/beta^2`` envelope and scales linearly in ``n`` (32 replicas per
  point, with across-replica standard deviations).
* **Theorem 3** — time-averaged ``Gamma/n`` of the exponential-top
  process is O(1), reported as mean +/- sd across replicas.
* **Theorem 6** — the single-choice process diverges like
  ``sqrt(t)`` while two-choice stays flat, measured on across-replica
  mean divergence curves.
"""

from _helpers import emit, once

from repro.analysis.stats import loglog_slope
from repro.analysis.theory import avg_rank_bound
from repro.bench.tables import format_table
from repro.core.potential import recommended_alpha
from repro.vector.exponential import VectorExponentialTopProcess
from repro.vector.labelled import VectorSequentialProcess, VectorSingleChoiceProcess

REPLICAS = 32

# Thm 1 sweep.
NS = [32, 64, 128]
BETAS = [1.0, 0.5]
PREFILL_FACTOR = 200
STEPS_FACTOR = 150

# Thm 3 run.
POTENTIAL_N = 32
POTENTIAL_STEPS = 6000

# Thm 6 run.
DIVERGE_N = 16
DIVERGE_PREFILL = 40_000
DIVERGE_STEPS = 40_000


def _thm1_rows():
    rows = []
    for n in NS:
        for beta in BETAS:
            prefill = PREFILL_FACTOR * n
            steps = STEPS_FACTOR * n
            proc = VectorSequentialProcess(
                n, prefill + steps, REPLICAS, beta=beta, rng=7 * n + int(10 * beta)
            )
            summary = proc.run_steady_state(prefill, steps).summary()
            bound = avg_rank_bound(n, beta)
            rows.append(
                {
                    "n": n,
                    "beta": beta,
                    "mean rank": summary["mean_rank"],
                    "sd": summary["mean_rank_sd"],
                    "bound n/beta^2": bound,
                    "ratio": summary["mean_rank"] / bound,
                }
            )
    return rows


def _thm3_row():
    proc = VectorExponentialTopProcess(POTENTIAL_N, REPLICAS, beta=1.0, rng=3)
    alpha = recommended_alpha(1.0)
    series = proc.run_potentials(
        POTENTIAL_STEPS, alpha, sample_every=max(POTENTIAL_STEPS // 100, 1)
    )
    row = {"n": POTENTIAL_N, "beta": 1.0, "alpha": alpha}
    row.update(series.summary(POTENTIAL_N))
    return row


def _thm6_curves():
    sample = DIVERGE_STEPS // 10
    single = VectorSingleChoiceProcess(
        DIVERGE_N, DIVERGE_PREFILL + DIVERGE_STEPS, REPLICAS, rng=11
    )
    run_s = single.divergence_curve(DIVERGE_PREFILL, DIVERGE_STEPS, sample_every=sample)
    double = VectorSequentialProcess(
        DIVERGE_N, DIVERGE_PREFILL + DIVERGE_STEPS, REPLICAS, beta=1.0, rng=12
    )
    run_d = double.run_steady_state_sampled(
        DIVERGE_PREFILL, DIVERGE_STEPS, sample_every=sample
    )
    return run_s, run_d


def _run():
    thm1 = _thm1_rows()
    thm3 = _thm3_row()
    run_s, run_d = _thm6_curves()
    return thm1, thm3, run_s, run_d


def test_vector_theory(benchmark):
    thm1, thm3, run_s, run_d = once(benchmark, _run)

    beta1 = [r for r in thm1 if r["beta"] == 1.0]
    slope_n, r2_n = loglog_slope(
        [r["n"] for r in beta1], [r["mean rank"] for r in beta1]
    )

    t = run_s.sample_steps
    single_curve = run_s.max_top_ranks.mean(axis=1)
    double_curve = run_d.max_top_ranks.mean(axis=1)
    slope_single, _ = loglog_slope(t, single_curve)
    slope_double, _ = loglog_slope(t, double_curve)

    sections = [
        format_table(
            thm1,
            title=(
                f"Theorem 1 (replica-parallel, R={REPLICAS}) — "
                f"mean rank vs n/beta^2; fitted exponent in n at beta=1: "
                f"{slope_n:.3f} (R^2={r2_n:.3f})"
            ),
        ),
        format_table(
            [thm3],
            title=f"Theorem 3 (replica-parallel) — time-averaged Gamma/n",
            floatfmt=".4f",
        ),
        format_table(
            [
                {
                    "t": int(ti),
                    "single max top rank": float(s),
                    "two-choice max top rank": float(d),
                }
                for ti, s, d in zip(t, single_curve, double_curve)
            ],
            title=(
                "Theorem 6 (replica-parallel) — across-replica mean divergence; "
                f"log-log slopes: single {slope_single:.3f} (sqrt law ~0.5), "
                f"two-choice {slope_double:.3f} (flat)"
            ),
        ),
    ]
    emit("vector_theory", "\n\n".join(sections))

    # Thm 1: linear in n, inside the envelope.
    assert 0.85 < slope_n < 1.15
    assert all(r["ratio"] < 1.5 for r in thm1)
    # Smaller beta never cheaper at fixed n.
    for n in NS:
        sub = {r["beta"]: r["mean rank"] for r in thm1 if r["n"] == n}
        assert sub[0.5] > sub[1.0]
    # Thm 3: Gamma/n O(1) with small across-replica spread.
    assert thm3["mean_gamma_over_n"] < 10.0
    assert thm3["mean_gamma_over_n_sd"] < thm3["mean_gamma_over_n"]
    # Thm 6: single-choice follows the sqrt law; two-choice stays flat.
    assert 0.3 < slope_single < 0.7
    assert slope_double < 0.15
