"""Service-scaling: real processes on real cores, plus sim cross-check.

The claim the simulator could model but never demonstrate: adding shard
owners to the live shared-memory service scales delete-min throughput.
Runs the same closed-throttle load at 1..4 shard owners and archives the
speedup curve, then cross-validates the rank-vs-beta shape against the
discrete-event simulator and archives everything as
``BENCH_service.json``.

The >2x speedup floor only binds on hardware with enough cores to scale
(CI runners have 4 vCPUs); on smaller boxes the curve is still archived
but the floor is informational.
"""

import os

from _helpers import archive_json, emit, once

from repro.bench.tables import format_table
from repro.service.loadgen import ScheduleSpec
from repro.service.server import run_scaling_sweep
from repro.service.validate import compare_service_and_sim

SHARD_COUNTS = (1, 2, 4)
WORKERS = 4
OPS = 60_000
PREFILL = 4_096
BETA = 0.5
SEED = 0

VALIDATE_BETAS = (0.0, 0.5, 1.0)
VALIDATE_OPS = 4_000
VALIDATE_RATE = 2_000.0

SPEEDUP_FLOOR = 2.0
#: The scaling floor needs cores to scale onto.
ENOUGH_CORES = (os.cpu_count() or 1) >= 4


def _run():
    spec = ScheduleSpec(mode="poisson", ops=OPS, prefill=PREFILL, rate=0.0, seed=SEED)
    scaling = run_scaling_sweep(
        SHARD_COUNTS, WORKERS, spec, beta=BETA, seed=SEED
    )
    validation = compare_service_and_sim(
        shards=max(SHARD_COUNTS),
        workers=2,
        betas=VALIDATE_BETAS,
        ops=VALIDATE_OPS,
        prefill=512,
        seed=SEED,
        rate=VALIDATE_RATE,
    )
    return {"scaling": scaling, "validation": validation, "cores": os.cpu_count()}


def test_service_scaling(benchmark):
    result = once(benchmark, _run)
    scaling, validation = result["scaling"], result["validation"]

    rows = [
        {
            "shards": row["shards"],
            "ops/s": round(row["throughput_ops_s"], 0),
            "speedup": round(row["speedup"], 2),
            "delete p99 ms": round(row["delete_p99_ms"], 2),
            "mean rank": round(row["rank"]["mean_rank"], 2) if row["rank"] else None,
            "torn": row["torn"],
        }
        for row in scaling["rows"]
    ]
    val_rows = [
        {
            "beta": row["beta"],
            "service mean rank": round(row["service"]["mean_rank"], 2),
            "sim mean rank": round(row["sim"]["mean_rank"], 2),
            "ks stat": round(row["ks_stat"], 3),
        }
        for row in validation["rows"]
    ]
    table = (
        format_table(
            rows,
            title=(
                "Live service: throughput vs shard owners\n"
                f"{WORKERS} loadgen workers, beta={BETA}, ops={OPS}, "
                f"prefill={PREFILL}, {result['cores']} cores"
            ),
        )
        + "\n\n"
        + format_table(
            val_rows,
            title=(
                "Rank-shape cross-validation vs simulator "
                f"(paced at {VALIDATE_RATE:.0f} ops/s; "
                f"agreement={validation['ordering_agreement']})"
            ),
        )
    )
    emit("service_scaling", table)
    # Raw per-beta rank samples are for the KS test, not the archive.
    for row in validation["rows"]:
        row.pop("rank_values", None)
    archive_json("BENCH_service", result)

    for row in scaling["rows"]:
        assert row["torn"] == 0, f"{row['shards']}-shard run tore ring slots"
    assert validation["ordering_agreement"], (
        "service does not reproduce the simulator's rank-vs-beta shape: "
        f"{val_rows}"
    )
    top_speedup = max(row["speedup"] for row in scaling["rows"])
    if ENOUGH_CORES:
        assert top_speedup > SPEEDUP_FLOOR, (
            f"best speedup {top_speedup:.2f}x across {SHARD_COUNTS}; "
            f"need > {SPEEDUP_FLOOR}x on {result['cores']} cores"
        )
