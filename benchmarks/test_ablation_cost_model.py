"""Ablation: cost-model sensitivity (cache-transfer cost sweep).

The throughput figures rest on one modelling assumption more than any
other: the cost of moving a contended cache line between cores.  This
bench re-runs the Figure 1 comparison at transfer costs from 30 to 480
cycles and shows the *qualitative* conclusions (MQ scales, LJ does not)
hold across the whole plausible range — the crossover merely shifts.
"""

from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, LindenJonssonPQ
from repro.sim.cost_model import CostModel
from repro.sim.workload import run_throughput_experiment

TRANSFER_COSTS = [30.0, 120.0, 480.0]
THREADS = [1, 8]
SEED = 77


def _run():
    rows = []
    for transfer in TRANSFER_COSTS:
        cost = CostModel().with_contention(transfer)
        row = {"cache_transfer": transfer}
        for threads in THREADS:

            def mq(engine, rng, threads=threads):
                return ConcurrentMultiQueue(engine, 2 * threads, rng=rng)

            def lj(engine, rng):
                return LindenJonssonPQ(engine, rng=rng)

            r_mq = run_throughput_experiment(
                mq, threads, 150, prefill=3000, cost_model=cost, seed=SEED
            )
            r_lj = run_throughput_experiment(
                lj, threads, 150, prefill=3000, cost_model=cost, seed=SEED
            )
            row[f"MQ @ {threads}T"] = r_mq.throughput
            row[f"LJ @ {threads}T"] = r_lj.throughput
        row["MQ scaling (8T/1T)"] = row["MQ @ 8T"] / row["MQ @ 1T"]
        row["LJ scaling (8T/1T)"] = row["LJ @ 8T"] / row["LJ @ 1T"]
        rows.append(row)
    return rows


def test_ablation_cost_model(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Ablation — cache-transfer cost sensitivity\n"
            "the MQ-scales / LJ-saturates conclusion is robust to the knob"
        ),
        floatfmt=".1f",
    )
    emit("ablation_cost_model", table)

    for row in rows:
        # At every transfer cost, MQ scales better than LJ at 8 threads.
        assert row["MQ scaling (8T/1T)"] > row["LJ scaling (8T/1T)"]
        # And MQ beats LJ outright at 8 threads.
        assert row["MQ @ 8T"] > row["LJ @ 8T"]
    # Higher contention cost hurts LJ more than MQ (widening gap).
    gaps = [r["MQ @ 8T"] / max(r["LJ @ 8T"], 1e-9) for r in rows]
    assert gaps[-1] > gaps[0]
