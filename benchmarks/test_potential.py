"""T3-potential (Theorem 3): E[Gamma(t)] <= C(eps) * n, uniformly in t.

Tracks the Gamma = Phi + Psi potential along long exponential-top-process
runs for several n and beta, reporting mean and max of Gamma/n, and
estimates the Lemma 2 supermartingale drift around the 4n threshold.
"""

from _helpers import emit, once

from repro.bench.tables import format_table
from repro.core.exponential import ExponentialTopProcess
from repro.core.potential import PotentialTracker, recommended_alpha

CONFIGS = [(8, 1.0), (16, 1.0), (32, 1.0), (16, 0.5), (16, 0.25)]
STEPS = 30_000
SEED = 3


def _run():
    rows = []
    for n, beta in CONFIGS:
        proc = ExponentialTopProcess(n, beta=beta, rng=SEED)
        tracker = PotentialTracker(proc, alpha=recommended_alpha(beta))
        series = tracker.run(STEPS, sample_every=STEPS // 100)
        g = series.gamma_over_n(n)
        half = len(g) // 2
        rows.append(
            {
                "n": n,
                "beta": beta,
                "alpha": tracker.alpha,
                "mean Gamma/n": float(g.mean()),
                "max Gamma/n": float(g.max()),
                "early Gamma/n": float(g[:half].mean()),
                "late Gamma/n": float(g[half:].mean()),
            }
        )

    # Drift estimates with an exaggerated alpha so excursions happen.
    proc = ExponentialTopProcess(8, beta=1.0, rng=SEED)
    tracker = PotentialTracker(proc, alpha=0.3)
    drift = tracker.drift_estimate(40_000, threshold=32.0)
    proc2 = ExponentialTopProcess(8, beta=1.0, rng=SEED + 1)
    tracker2 = PotentialTracker(proc2, alpha=0.3)
    curve = tracker2.binned_drift(40_000, n_bins=6)
    return rows, drift, curve


def test_potential(benchmark):
    rows, drift, curve = once(benchmark, _run)
    centers, means, counts = curve
    curve_rows = [
        {"Gamma bin center": c, "E[dGamma | Gamma]": m, "samples": int(k)}
        for c, m, k in zip(centers, means, counts)
        if k > 0
    ]
    table = format_table(
        rows,
        title=(
            "Theorem 3 — Gamma(t)/n stays O(1), uniformly in t\n"
            f"(Lemma 2 drift at alpha=0.3, threshold 4n: above={drift.mean_drift_above:.4f}"
            f" [{drift.samples_above} samples], below={drift.mean_drift_below:.4f})"
        ),
        floatfmt=".4f",
    )
    curve_table = format_table(
        curve_rows,
        title="Lemma 2 drift curve (alpha=0.3, n=8): restoring force grows with Gamma",
        floatfmt=".4f",
    )
    emit("potential", table + "\n\n" + curve_table)

    # The drift curve decreases: top bin clearly below bottom bin.
    assert curve_rows[-1]["E[dGamma | Gamma]"] < curve_rows[0]["E[dGamma | Gamma]"]
    assert curve_rows[-1]["E[dGamma | Gamma]"] < 0.05

    for row in rows:
        assert row["mean Gamma/n"] < 4.0
        assert row["max Gamma/n"] < 10.0
        # Time-uniformity of the potential itself.
        assert row["late Gamma/n"] < 1.5 * row["early Gamma/n"]
    # Supermartingale: non-positive-ish drift above the threshold when
    # excursions were actually observed.
    if drift.samples_above > 200:
        assert drift.mean_drift_above < 0.05
