"""Ablation: number of removal choices d (the 'power of CHOICE' knob).

The paper's processes use d = 2 (mixed with d = 1 by beta).  Classic
allocation theory predicts the d=1 -> d=2 jump is qualitative (divergent
-> time-uniform O(n)) while d > 2 only improves constants.  This bench
measures mean and max rank for d in {1, 2, 3, 4, 8}.
"""

from _helpers import emit, once

from repro.bench.tables import format_table
from repro.core.dchoice import DChoiceProcess

N = 16
PREFILL = 12_000
STEPS = 10_000
DS = [1, 2, 3, 4, 8]
SEEDS = [0, 1]


def _run():
    rows = []
    for d in DS:
        means, maxes = [], []
        for seed in SEEDS:
            proc = DChoiceProcess(N, PREFILL + STEPS, d=d, rng=seed)
            trace = proc.run_steady_state(PREFILL, STEPS)
            means.append(trace.mean_rank())
            maxes.append(trace.max_rank())
        rows.append(
            {
                "d": d,
                "mean rank": sum(means) / len(means),
                "max rank": sum(maxes) / len(maxes),
            }
        )
    return rows


def test_ablation_dchoice(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Ablation — removal choices d, n=16\n"
            "expectation: d=1 divergent, d=2 captures most of the benefit"
        ),
    )
    emit("ablation_dchoice", table)

    means = {r["d"]: r["mean rank"] for r in rows}
    # Strictly improving in d ...
    assert means[1] > means[2] > means[4]
    # ... but d=2 already captures most of the benefit.
    gain_12 = means[1] - means[2]
    gain_28 = means[2] - means[8]
    assert gain_12 > 3 * gain_28
    # d=1 is in another regime entirely (diverging over this horizon).
    assert means[1] > 5 * means[2]
