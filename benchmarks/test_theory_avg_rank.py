"""T1-avg (Theorem 1 / Corollary 2): E[rank removed] = O(n / beta^2).

Sweeps n and beta for the sequential process and reports the measured
mean rank against the n/beta^2 envelope, plus the fitted scaling
exponent in n (should be ~1: the bound is linear and tight).
"""

from _helpers import emit, once

from repro.analysis.stats import loglog_slope
from repro.analysis.theory import avg_rank_bound, envelope_constant
from repro.bench.tables import format_table
from repro.core.process import SequentialProcess

NS = [8, 16, 32, 64, 128]
BETAS = [1.0, 0.5, 0.25]
PREFILL_FACTOR = 600
STEPS_FACTOR = 400
SEEDS = [0, 1]


def _mean_rank(n, beta, seed):
    prefill = PREFILL_FACTOR * n
    steps = STEPS_FACTOR * n
    proc = SequentialProcess(n, prefill + steps, beta=beta, rng=seed)
    return proc.run_steady_state(prefill, steps).mean_rank()


def _run():
    rows = []
    for n in NS:
        for beta in BETAS:
            mean = sum(_mean_rank(n, beta, s) for s in SEEDS) / len(SEEDS)
            bound = avg_rank_bound(n, beta)
            rows.append(
                {
                    "n": n,
                    "beta": beta,
                    "mean rank": mean,
                    "bound n/beta^2": bound,
                    "ratio": mean / bound,
                }
            )
    return rows


def test_theory_avg_rank(benchmark):
    rows = once(benchmark, _run)

    beta1 = [r for r in rows if r["beta"] == 1.0]
    slope, r2 = loglog_slope([r["n"] for r in beta1], [r["mean rank"] for r in beta1])
    c = envelope_constant([r["mean rank"] for r in rows], [r["bound n/beta^2"] for r in rows])
    table = format_table(
        rows,
        title=(
            "Theorem 1 / Corollary 2 — mean removed rank vs n/beta^2 envelope\n"
            f"fitted exponent in n at beta=1: {slope:.3f} (R^2={r2:.3f}); "
            f"worst envelope constant: {c:.3f}"
        ),
    )
    emit("theory_avg_rank", table)

    assert 0.85 < slope < 1.15  # linear in n
    assert r2 > 0.98
    assert c < 1.5  # comfortably O(n/beta^2)
    # Within each n, smaller beta never cheaper.
    for n in NS:
        sub = {r["beta"]: r["mean rank"] for r in rows if r["n"] == n}
        assert sub[0.25] > sub[1.0]
