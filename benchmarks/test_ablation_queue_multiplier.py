"""Ablation: queues-per-thread multiplier c (n_queues = c * threads).

The paper (following Rihani et al.) uses c = 2.  Fewer queues mean more
lock conflicts; more queues mean lower conflict but worse rank (rank
scales with n = c * P) and colder caches.  This bench sweeps c at a
fixed thread count and reports throughput, lock failure rate, and rank.
"""

import numpy as np
from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, OpRecorder
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload, run_throughput_experiment

MULTIPLIERS = [1, 2, 4, 8]
THREADS = 8
SEED = 55


def _measure(c):
    n_queues = c * THREADS

    def make(engine, rng):
        return ConcurrentMultiQueue(engine, n_queues, rng=rng)

    res = run_throughput_experiment(make, THREADS, 200, prefill=4000, seed=SEED)

    rec = OpRecorder()
    eng = Engine()
    model = ConcurrentMultiQueue(eng, n_queues, rng=SEED, recorder=rec)
    model.prefill(np.random.default_rng(SEED).integers(2**40, size=10_000))
    AlternatingWorkload(model, THREADS, 800, rng=SEED + 1).spawn_on(eng)
    eng.run()
    return res, rec.rank_trace().mean_rank()


def _run():
    rows = []
    for c in MULTIPLIERS:
        res, mean_rank = _measure(c)
        rows.append(
            {
                "c (queues/thread)": c,
                "n_queues": c * THREADS,
                "throughput (ops/Mcyc)": res.throughput,
                "lock failure %": 100 * res.lock_failure_ratio,
                "mean rank": mean_rank,
            }
        )
    return rows


def test_ablation_queue_multiplier(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Ablation — queues-per-thread multiplier c at 8 threads\n"
            "c=2 (the paper's choice) balances conflicts vs rank"
        ),
    )
    emit("ablation_queue_multiplier", table)

    by_c = {r["c (queues/thread)"]: r for r in rows}
    # Lock conflicts drop monotonically with more queues.
    failures = [by_c[c]["lock failure %"] for c in MULTIPLIERS]
    assert all(a >= b for a, b in zip(failures, failures[1:]))
    # Rank error grows with n = c * threads (Theorem 1 is O(n)).
    assert by_c[8]["mean rank"] > by_c[1]["mean rank"]
    # Throughput gains shrink sharply past c=2 (diminishing returns; the
    # real-world downside of large c — cache-capacity pressure from many
    # cold queues — is outside the cost model, which is why the paper's
    # c=2 is the practical choice despite c=8 looking free here).
    tput = {c: by_c[c]["throughput (ops/Mcyc)"] for c in MULTIPLIERS}
    assert tput[2] - tput[1] > 1.5 * (tput[8] - tput[4])
