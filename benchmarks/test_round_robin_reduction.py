"""A-reduction (Appendix A): round-robin insertion reduces removals to
classic two-choice balls-into-bins on virtual bins.

Checks the coupling exactly (removal counts == allocation loads under a
shared choice stream) and reports the virtual-bin gap trajectory next to
an independent two-choice allocation's gap — both stay O(log log n)-ish
regardless of run length.
"""

import numpy as np
from _helpers import emit, once

from repro.ballsbins.processes import gap_history
from repro.bench.tables import format_table
from repro.core.round_robin import coupled_virtual_loads, virtual_load_history

N = 16
PREFILL = 60_000
REMOVALS = 30_000
SAMPLE_EVERY = 3_000


def _run():
    exact_matches = []
    for seed in range(5):
        rr, tc = coupled_virtual_loads(N, 8_000, 4_000, seed=seed)
        exact_matches.append(bool(np.array_equal(rr, tc)))

    steps, rr_gaps, _snaps = virtual_load_history(
        N, PREFILL, REMOVALS, seed=77, sample_every=SAMPLE_EVERY
    )
    bb_steps, bb_gaps = gap_history(N, REMOVALS, d=2, rng=77, sample_every=SAMPLE_EVERY)
    rows = [
        {
            "t": int(t),
            "round-robin virtual gap": float(rg),
            "two-choice allocation gap": float(bg),
        }
        for t, rg, bg in zip(steps, rr_gaps, bb_gaps)
    ]
    return exact_matches, rows


def test_round_robin_reduction(benchmark):
    exact_matches, rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Appendix A — round-robin removals == two-choice allocation\n"
            f"exact coupling across 5 seeds: {exact_matches}"
        ),
    )
    emit("round_robin_reduction", table)

    assert all(exact_matches)
    # Both gaps stay small and non-growing (heavily-loaded two-choice).
    final = rows[-1]
    assert final["round-robin virtual gap"] < 6.0
    assert final["two-choice allocation gap"] < 6.0
    first = rows[0]
    assert final["round-robin virtual gap"] < first["round-robin virtual gap"] + 4.0
