"""Vec-backend: the vector engine vs the reference, head to head.

The headline sweep from the vector subsystem's acceptance bar: 64
replicas of the (1+beta) process at n=256 with 200k steady-state steps
each, run once through :class:`SequentialProcess` (per replica) and once
through :class:`VectorSequentialProcess` (all replicas in lockstep).
Asserts the >= 10x throughput target and rank-law parity (KS), and
archives both the table and a machine-readable ``BENCH_vector.json``.
"""

import json

from _helpers import RESULTS_DIR, emit, once

from repro.bench.tables import format_table
from repro.vector.sweep import compare_backends

N = 256
BETA = 1.0
PREFILL = 16384
STEPS = 200_000
REPLICAS = 64
#: Reference replicas actually timed — throughput is a per-op rate, so a
#: few replicas measure it as well as 64 would at an eighth of the cost.
REF_REPLICAS = 4

SPEEDUP_FLOOR = 10.0


def _run():
    return compare_backends(
        N, BETA, PREFILL, STEPS, REPLICAS, seed=0, ref_replicas=REF_REPLICAS
    )


def test_vector_backend(benchmark):
    result = once(benchmark, _run)

    rows = [dict(result["reference"]), dict(result["vector"])]
    rows[-1]["speedup"] = round(result["speedup"], 2)
    rows[-1]["ks_p"] = round(result["ks_p_value"], 4)
    columns = list(rows[0].keys()) + ["speedup", "ks_p"]
    table = format_table(
        rows,
        columns=columns,
        title=(
            "Vector backend vs reference — headline (1+beta) sweep\n"
            f"n={N}, beta={BETA}, prefill={PREFILL}, steps={STEPS}, "
            f"replicas={REPLICAS} (reference timed on {REF_REPLICAS})"
        ),
    )
    emit("vector_backend", table)
    with open(RESULTS_DIR / "BENCH_vector.json", "w") as fh:
        json.dump(result, fh, indent=2)

    assert result["speedup"] >= SPEEDUP_FLOOR, (
        f"vector backend {result['speedup']:.1f}x reference; need >= {SPEEDUP_FLOOR}x"
    )
    assert result["parity_ok"], (
        f"rank-law KS test failed (p={result['ks_p_value']:.3e})"
    )
    # Same law on both sides: the mean ranks agree to a few sd of the
    # per-replica spread.
    ref, vec = result["reference"], result["vector"]
    tolerance = 4 * max(ref["mean_rank_sd"], vec["mean_rank_sd"], 1e-9)
    assert abs(ref["mean_rank"] - vec["mean_rank"]) < tolerance
