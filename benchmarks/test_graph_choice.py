"""G-graph (Section 6): the labelled choice process on graphs.

The paper conjectures the two-choice guarantees extend to graphs with
good expansion.  This bench runs the process on a spectrum of graphs —
cycle (worst expansion), torus, random 4-regular (expander), complete
(classic two-choice) — and reports mean/max rank, plus the graphical
*allocation* gaps for the same graphs as the unlabelled reference.
"""

from _helpers import emit, once

from repro.ballsbins.graphical import GraphicalAllocation
from repro.bench.tables import format_table
from repro.graphs.choice_process import GraphChoiceProcess
from repro.graphs.expansion import spectral_gap
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
    torus_graph,
)

N = 36  # 6x6 torus requires a square count
PREFILL = 12_000
STEPS = 10_000
SEED = 13


def _graphs():
    return [
        ("cycle", cycle_graph(N)),
        ("torus 6x6", torus_graph(6, 6)),
        ("random 4-regular", random_regular_graph(N, 4, rng=1)),
        ("complete", complete_graph(N)),
    ]


def _run():
    rows = []
    for name, graph in _graphs():
        proc = GraphChoiceProcess(graph, PREFILL + STEPS, rng=SEED)
        run = proc.run_steady_state_sampled(PREFILL, STEPS, sample_every=1000)
        alloc = GraphicalAllocation(N, list(graph.edges()), rng=SEED)
        alloc.insert_many(20_000)
        rows.append(
            {
                "graph": name,
                "spectral gap": spectral_gap(graph),
                "mean rank": run.trace.mean_rank(),
                "E[max top rank]": float(run.max_top_ranks.mean()),
                "allocation gap": alloc.gap(),
                "avg degree": graph.average_degree(),
            }
        )
    return rows


def test_graph_choice(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Section 6 — graph choice process across expansion levels, n=36\n"
            "conjecture shape: better expansion -> smaller ranks; complete = two-choice"
        ),
    )
    emit("graph_choice", table)

    by_name = {r["graph"]: r for r in rows}
    # Expansion ordering on mean rank.
    assert by_name["cycle"]["mean rank"] > by_name["random 4-regular"]["mean rank"]
    assert by_name["random 4-regular"]["mean rank"] < 3.0 * by_name["complete"]["mean rank"]
    # Complete graph behaves like the sequential two-choice process: O(n).
    assert by_name["complete"]["mean rank"] < 2.5 * N
    # Same ordering in the unlabelled allocation gaps.
    assert by_name["cycle"]["allocation gap"] > by_name["complete"]["allocation gap"]
    # The conjecture, quantified: rank cost decreases as spectral
    # expansion increases (over these families, the order is strict).
    ordered = sorted(rows, key=lambda r: r["spectral gap"])
    ranks_by_gap = [r["mean rank"] for r in ordered]
    assert ranks_by_gap[0] == max(ranks_by_gap)  # worst expander worst rank
    assert ranks_by_gap[-1] == min(ranks_by_gap)  # best expander best rank
