"""Oracle: the exact stationary rank law vs the simulator, across beta.

Walzer & Williams (arXiv:2410.08714) give the (1+beta) process's
stationary removed-rank distribution in closed form: the rank is a sum
of independent geometrics whose ratios come straight from the removal
position law ``q_j``.  ``repro.analysis.exact`` implements that law;
this bench archives how tightly the repo's own simulator agrees with
it, and how fast the closed form answers questions the grid never
could.

Three sections:

* **agreement** — a beta grid at ``n = 256``: exact vs empirical mean,
  exact Kolmogorov distance of the simulated rank sample, relative mean
  error.  This is prediction vs measurement, not curve fitting: the
  oracle sees no simulation data.
* **convergence** — the KS distance along a cumulative t-ladder, the
  property that makes ``--oracle`` columns a usable distance-from-
  stationarity diagnostic.
* **instant predictions** — mean / std / p99.9 / deep tail log-sf at
  ``n = 65536`` (16x beyond the exact grid's cap), each in
  milliseconds, via the closed-form moments and the log-space
  dominant-pole tail expansion.
"""

import time

from _helpers import archive_json, emit, once

from repro.analysis.exact import ExactRankDistribution
from repro.bench.tables import format_table
from repro.vector.sweep import ORACLE_SAMPLE_CAP, _ks_sample, run_vector_backend

N = 256
BETAS = [1.0, 0.75, 0.5, 0.25]
REPLICAS = 64
PREFILL = 64 * N
BASE_STEPS = 16_000  # scaled by 1/beta^2: relaxation time grows like n/beta^2
LADDER_FRACTIONS = [1 / 64, 1 / 8, 1.0]

HUGE_N = 65_536


def _steps_for(beta: float) -> int:
    return int(BASE_STEPS / beta**2)


def _agreement_rows():
    rows, ladders = [], {}
    for beta in BETAS:
        law = ExactRankDistribution(N, beta)
        steps = _steps_for(beta)
        run = run_vector_backend(
            N, beta, prefill=PREFILL, steps=steps, replicas=REPLICAS, seed=17
        )
        sample = _ks_sample(run.ranks, cap=ORACLE_SAMPLE_CAP)
        emp_mean = float(run.ranks[steps // 8:].mean())
        rows.append(
            {
                "beta": beta,
                "steps": steps,
                "oracle mean": law.mean(),
                "sim mean": emp_mean,
                "mean rel err": abs(emp_mean - law.mean()) / law.mean(),
                "oracle ks": law.ks_distance(sample),
                "oracle p99": law.quantile(0.99),
            }
        )
        ladders[beta] = [
            law.ks_distance(
                _ks_sample(run.ranks[: max(1, int(f * steps))], cap=ORACLE_SAMPLE_CAP)
            )
            for f in LADDER_FRACTIONS
        ]
    return rows, ladders


def _instant_rows():
    rows = []
    law = ExactRankDistribution(HUGE_N, 1.0)
    for label, fn in [
        ("mean", law.mean),
        ("std", law.std),
        ("p99.9", lambda: law.quantile_tail(0.999)),
        ("log sf(mean+12sd)", lambda: law.logsf_tail(int(law.mean() + 12 * law.std()))),
    ]:
        start = time.perf_counter()
        value = float(fn())
        rows.append(
            {
                "quantity": label,
                "value": value,
                "ms": 1000.0 * (time.perf_counter() - start),
            }
        )
    return rows


def test_oracle_agreement(benchmark):
    (agreement, ladders), instant = once(
        benchmark, lambda: (_agreement_rows(), _instant_rows())
    )

    sections = [
        format_table(
            agreement,
            title=f"Exact oracle vs vector simulator (n={N}, "
            f"{REPLICAS} replicas, steps scaled by 1/beta^2)",
            floatfmt=".4f",
        ),
        format_table(
            [
                {
                    "beta": beta,
                    **{
                        f"ks@{f:.3g}T": ks
                        for f, ks in zip(LADDER_FRACTIONS, ladder)
                    },
                }
                for beta, ladder in ladders.items()
            ],
            title="KS distance to the oracle along the cumulative t-ladder "
            "(T = per-beta total steps)",
            floatfmt=".4f",
        ),
        format_table(
            instant,
            title=f"Closed-form predictions at n={HUGE_N} (grid impossible)",
            floatfmt=".3f",
        ),
    ]
    emit("oracle_agreement", "\n\n".join(sections))
    archive_json(
        "oracle_agreement",
        {"n": N, "agreement": agreement, "ladders": ladders, "instant": instant},
    )

    for row in agreement:
        assert row["mean rel err"] < 0.05
        assert row["oracle ks"] < 0.05
    for ladder in ladders.values():
        assert ladder[0] > ladder[1] > ladder[2]
    for row in instant:
        assert row["ms"] < 1000.0
