"""Extension bench: graceful degradation under the chaos engine.

Two sweeps, both audited for element conservation by
:class:`~repro.concurrent.audit.InvariantAuditor`:

1. **Fault intensity vs rank error** — `better`-locking MultiQueue under
   increasing :class:`~repro.sim.faults.LockHolderPreempt` rates.  Rank
   error must degrade *smoothly*: bounded multiples of the fault-free
   baseline, no unbounded blow-up, because a stalled holder freezes only
   one queue and every other operation routes around it.
2. **Sustained lock-holder stall** — Appendix C's adversary as a
   :class:`~repro.sim.faults.LockHolderStall` fault, comparing `both`-
   locking (the "simple strategy" whose divergence Appendix C proves)
   against `better`-locking.  Lock-both dead-holds *two* queues per
   stall and its max rank error grows with the stall duration, while
   lock-better stays comparatively flat.

Unlike the legacy ``preempt_prob`` knob, faults here run on a dedicated
RNG (:class:`~repro.sim.faults.FaultPlan`), so every cell of the sweep
replays the identical model-side randomness — differences between rows
are purely the injected faults.
"""

import numpy as np
from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, InvariantAuditor, OpRecorder
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector, FaultPlan, LockHolderPreempt, LockHolderStall
from repro.sim.workload import AlternatingWorkload

N_QUEUES = 8
THREADS = 4
PREFILL = 15_000
OPS = 800
SEED = 67
FAULT_SEED = 11

PREEMPT_CYCLES = 50_000.0
PREEMPT_PROBS = [0.0, 0.005, 0.02, 0.05]

STALL_AT = 120_000.0
STALL_CYCLES = [0.0, 2e5, 8e5]
#: A "sustained" adversary stalls several distinct lock holders at
#: staggered, overlapping times — each stall dead-holds two queues under
#: lock-both but only one under lock-better.
N_STALLS = 3


def _measure(delete_locking, faults):
    rec = OpRecorder()
    eng = Engine(progress_budget=2e7)
    model = ConcurrentMultiQueue(
        eng, N_QUEUES, rng=SEED, recorder=rec, delete_locking=delete_locking
    )
    model.prefill(np.random.default_rng(SEED).integers(2**40, size=PREFILL))
    AlternatingWorkload(model, THREADS, OPS, rng=SEED + 1).spawn_on(eng)
    FaultInjector(FaultPlan(faults, rng=FAULT_SEED)).attach(eng)
    eng.run()
    report = InvariantAuditor(model, recorder=rec, engine=eng).audit()
    report.raise_if_failed()
    assert report.lost == 0 and report.duplicated == 0
    trace = rec.rank_trace()
    return trace.mean_rank(), trace.max_rank()


def _run_intensity():
    rows = []
    for prob in PREEMPT_PROBS:
        faults = (
            [LockHolderPreempt(prob=prob, cycles=PREEMPT_CYCLES)] if prob else []
        )
        mean, mx = _measure("better", faults)
        rows.append({"preempt prob": prob, "mean rank": mean, "max rank": mx})
    return rows


def _run_stall():
    rows = []
    for cycles in STALL_CYCLES:
        row = {"stall cycles": cycles}
        for locking, min_locks in (("better", 1), ("both", 2)):
            faults = (
                [
                    LockHolderStall(
                        at=STALL_AT + k * cycles / 4,
                        duration=cycles,
                        min_locks=min_locks,
                    )
                    for k in range(N_STALLS)
                ]
                if cycles
                else []
            )
            mean, mx = _measure(locking, faults)
            row[f"mean rank (lock {locking})"] = mean
            row[f"max rank (lock {locking})"] = mx
        rows.append(row)
    return rows


def _run():
    return _run_intensity(), _run_stall()


def test_chaos_robustness(benchmark):
    intensity, stall = once(benchmark, _run)
    table = (
        format_table(
            intensity,
            title=(
                "chaos sweep A — lock-better rank error vs LockHolderPreempt\n"
                f"rate ({PREEMPT_CYCLES:.0f}-cycle stalls); degradation stays bounded"
            ),
        )
        + "\n\n"
        + format_table(
            stall,
            title=(
                "chaos sweep B — Appendix C sustained lock-holder stall at\n"
                f"t={STALL_AT:.0f}; lock-both dead-holds two queues and diverges"
            ),
        )
    )
    emit("chaos_robustness", table)

    # Sweep A: smooth degradation, no blow-up.  Every faulted cell stays
    # within a bounded multiple of the fault-free baseline, and the max
    # rank never explodes past the prefill size (an unbounded-divergence
    # run would drain whole queues out of order).
    base = intensity[0]["mean rank"]
    for row in intensity[1:]:
        assert row["mean rank"] < 25 * base + 50, row
        assert row["max rank"] < PREFILL / 4, row

    # Sweep B: Appendix C divergence.  Under a sustained stall the
    # lock-both strategy suffers a strictly larger max rank error than
    # lock-better, and its error grows with the stall duration.
    by_cycles = {r["stall cycles"]: r for r in stall}
    longest = by_cycles[STALL_CYCLES[-1]]
    assert longest["max rank (lock both)"] > 1.5 * longest["max rank (lock better)"]
    assert (
        longest["max rank (lock both)"]
        > 2 * by_cycles[0.0]["max rank (lock both)"]
    )
