"""Figure 2: mean rank of removed elements vs beta (8 queues, 8 threads).

Paper claim (log-scale y): mean rank grows only modestly as beta
decreases — the extra relaxation is cheap in rank terms.  The paper also
notes results conform to the analysis for beta >= 0.5 with an apparent
inflection around beta ~ 0.5.

Reproduction: the concurrent MultiQueue model with linearization-point
rank recording (strictly more accurate than the paper's timestamp
methodology), plus the sequential process as the analytic reference.
"""

import numpy as np
from _helpers import emit, once

from repro.analysis.ascii_plot import line_chart
from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, OpRecorder
from repro.core.process import SequentialProcess
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload

BETAS = [1.0, 0.9, 0.75, 0.5, 0.25, 0.1]
N_QUEUES = 8
N_THREADS = 8
PREFILL = 20_000
OPS_PER_THREAD = 1_000
SEED = 7


def _concurrent_mean_rank(beta):
    rec = OpRecorder()
    eng = Engine()
    model = ConcurrentMultiQueue(eng, N_QUEUES, beta=beta, rng=SEED, recorder=rec)
    model.prefill(np.random.default_rng(SEED).integers(2**40, size=PREFILL))
    AlternatingWorkload(model, N_THREADS, OPS_PER_THREAD, rng=SEED + 1).spawn_on(eng)
    eng.run()
    trace = rec.rank_trace()
    return trace.mean_rank(), trace.quantile(0.99)


def _sequential_mean_rank(beta):
    steps = N_THREADS * OPS_PER_THREAD
    proc = SequentialProcess(N_QUEUES, PREFILL + steps, beta=beta, rng=SEED)
    return proc.run_steady_state(PREFILL, steps).mean_rank()


def _run():
    rows = []
    for beta in BETAS:
        conc_mean, conc_p99 = _concurrent_mean_rank(beta)
        rows.append(
            {
                "beta": beta,
                "mean rank (concurrent)": conc_mean,
                "p99 rank (concurrent)": conc_p99,
                "mean rank (sequential)": _sequential_mean_rank(beta),
            }
        )
    return rows


def test_fig2_mean_rank(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Figure 2 — mean rank vs beta (8 queues, 8 threads)\n"
            "paper shape: modest growth as beta decreases (log-scale y)"
        ),
    )
    chart = line_chart(
        [r["beta"] for r in rows],
        {
            "concurrent": [r["mean rank (concurrent)"] for r in rows],
            "sequential": [r["mean rank (sequential)"] for r in rows],
        },
        title="Figure 2 (ASCII): mean rank vs beta, log y",
        logy=True,
        width=60,
        height=12,
    )
    emit("fig2_mean_rank", table + "\n\n" + chart)

    by_beta = {r["beta"]: r for r in rows}
    # Monotone-ish: smaller beta costs more rank.
    assert by_beta[0.1]["mean rank (concurrent)"] > by_beta[1.0]["mean rank (concurrent)"]
    # "Modest": dropping beta 1.0 -> 0.5 costs well under 10x (log scale).
    ratio = by_beta[0.5]["mean rank (concurrent)"] / by_beta[1.0]["mean rank (concurrent)"]
    assert ratio < 5.0
    # Concurrent tracks the sequential analysis (distributional claim).
    for beta in (1.0, 0.75, 0.5):
        conc = by_beta[beta]["mean rank (concurrent)"]
        seq = by_beta[beta]["mean rank (sequential)"]
        assert abs(conc - seq) / seq < 0.5, f"beta={beta}: {conc} vs {seq}"
