"""Extension bench: Appendix C generalized to random OS preemption.

Appendix C's counterexample uses one adversarial stall; real systems
deliver many small ones (scheduler preemption, interrupts).  This bench
injects preemption *inside critical sections* at increasing rates and
measures rank degradation for the better-lock and lock-both MultiQueue
variants.  Lock-both holds two queues hostage per stall, so it degrades
faster — quantifying why the algorithm locks only the better queue.
"""

import numpy as np
from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, OpRecorder
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload

N_QUEUES = 8
THREADS = 4
PREFILL = 15_000
OPS = 800
PREEMPT_CYCLES = 50_000.0
PROBS = [0.0, 0.01, 0.05, 0.2]
SEED = 67


def _measure(delete_locking, prob):
    rec = OpRecorder()
    eng = Engine()
    model = ConcurrentMultiQueue(
        eng,
        N_QUEUES,
        rng=SEED,
        recorder=rec,
        delete_locking=delete_locking,
        preempt_prob=prob,
        preempt_cycles=PREEMPT_CYCLES,
    )
    model.prefill(np.random.default_rng(SEED).integers(2**40, size=PREFILL))
    AlternatingWorkload(model, THREADS, OPS, rng=SEED + 1).spawn_on(eng)
    eng.run()
    trace = rec.rank_trace()
    return trace.mean_rank(), trace.max_rank()


def _run():
    rows = []
    for prob in PROBS:
        better_mean, better_max = _measure("better", prob)
        both_mean, both_max = _measure("both", prob)
        rows.append(
            {
                "preempt prob": prob,
                "mean rank (lock better)": better_mean,
                "max rank (lock better)": better_max,
                "mean rank (lock both)": both_mean,
                "max rank (lock both)": both_max,
            }
        )
    return rows


def test_preemption_robustness(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Appendix C generalized — rank error under in-critical-section\n"
            f"preemption ({PREEMPT_CYCLES:.0f}-cycle stalls); lock-both degrades faster"
        ),
    )
    emit("preemption_robustness", table)

    by_prob = {r["preempt prob"]: r for r in rows}
    # Preemption inflates rank error (moderate rates are the worst case:
    # at very high rates nearly *all* threads are stalled at once, the
    # system quiesces, and effective concurrency — hence rank error —
    # drops back down; the table shows this non-monotonicity).
    assert (
        by_prob[0.05]["mean rank (lock better)"]
        > 1.5 * by_prob[0.0]["mean rank (lock better)"]
    )
    # Lock-both suffers at least as much as lock-better under stalls —
    # two queues are held hostage per preemption instead of one.  (10%
    # tolerance: exponential lock-retry backoff makes the two variants'
    # retry timing diverge slightly run to run; the targeted-stall sweep
    # in test_chaos_robustness.py is the sharp version of this claim.)
    for prob in (0.01, 0.05, 0.2):
        assert (
            by_prob[prob]["mean rank (lock both)"]
            >= 0.9 * by_prob[prob]["mean rank (lock better)"]
        ), prob
    # Without preemption the variants are comparable.
    base_better = by_prob[0.0]["mean rank (lock better)"]
    base_both = by_prob[0.0]["mean rank (lock both)"]
    assert abs(base_better - base_both) < 0.5 * base_better + 5
