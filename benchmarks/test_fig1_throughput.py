"""Figure 1: throughput vs. thread count for every contender.

Paper claim: MultiQueue variants dominate Lindén–Jonsson and kLSM except
at very low thread counts, and the (1+beta) variants with beta < 1 beat
the original MultiQueue (beta=1) by up to ~20%.

Reproduction: simulated threads on the discrete-event engine; throughput
in operations per megacycle (see DESIGN.md for the substitution).  The
shape to check: MQ curves grow with threads, MQ(beta<1) >= MQ(1),
LJ peaks early then collapses, kLSM scales poorly.
"""

from _helpers import emit, once

from repro.analysis.ascii_plot import line_chart
from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, KLSMPQ, LindenJonssonPQ, SprayListPQ
from repro.sim.workload import run_throughput_experiment

THREAD_COUNTS = [1, 2, 4, 8, 16]
OPS_PER_THREAD = 150
PREFILL = 4000
SEEDS = [1701, 1702, 1703]


def _mq(beta):
    def factory(threads):
        def make(engine, rng):
            return ConcurrentMultiQueue(engine, n_queues=2 * threads, beta=beta, rng=rng)

        return make

    return factory


def _lj(threads):
    def make(engine, rng):
        return LindenJonssonPQ(engine, rng=rng)

    return make


def _klsm(threads):
    def make(engine, rng):
        return KLSMPQ(engine, relaxation=256, rng=rng)

    return make


def _spray(threads):
    def make(engine, rng):
        return SprayListPQ(engine, n_threads=threads, rng=rng)

    return make


CONTENDERS = [
    ("MQ beta=1.0", _mq(1.0)),
    ("MQ beta=0.75", _mq(0.75)),
    ("MQ beta=0.5", _mq(0.5)),
    ("Linden-Jonsson", _lj),
    ("kLSM k=256", _klsm),
    ("SprayList", _spray),
]


def _run():
    import numpy as np

    rows = []
    for threads in THREAD_COUNTS:
        row = {"threads": threads}
        for name, factory in CONTENDERS:
            samples = [
                run_throughput_experiment(
                    factory(threads), threads, OPS_PER_THREAD, prefill=PREFILL, seed=seed
                ).throughput
                for seed in SEEDS
            ]
            row[name] = float(np.mean(samples))
            row[f"{name} sd"] = float(np.std(samples, ddof=1))
        rows.append(row)
    return rows


def test_fig1_throughput(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        columns=["threads"]
        + [name for name, _f in CONTENDERS]
        + ["MQ beta=1.0 sd", "Linden-Jonsson sd"],
        title=(
            "Figure 1 — throughput (ops/Mcycle) vs threads\n"
            f"paper shape: MQ scales, MQ(beta<1) >= MQ(1), LJ collapses, kLSM lags\n"
            f"(means over {len(SEEDS)} seeds; sd columns show run-to-run spread)"
        ),
        floatfmt=".0f",
    )
    chart = line_chart(
        [r["threads"] for r in rows],
        {name: [r[name] for r in rows] for name, _f in CONTENDERS},
        title="Figure 1 (ASCII): throughput vs threads",
        width=60,
        height=14,
    )
    emit("fig1_throughput", table + "\n\n" + chart)

    by_threads = {r["threads"]: r for r in rows}
    top = by_threads[THREAD_COUNTS[-1]]
    # MultiQueues beat LJ and kLSM at high thread counts.
    assert top["MQ beta=1.0"] > top["Linden-Jonsson"]
    assert top["MQ beta=1.0"] > top["kLSM k=256"]
    # beta < 1 improves on the original MultiQueue.
    assert top["MQ beta=0.5"] > top["MQ beta=1.0"]
    # "except at very low thread counts": LJ wins at 1 thread.
    assert by_threads[1]["Linden-Jonsson"] > by_threads[1]["MQ beta=1.0"]
    # MQ actually scales: 16 threads >> 1 thread.
    assert top["MQ beta=1.0"] > 4 * by_threads[1]["MQ beta=1.0"]
