"""Figure 3: single-source shortest path running time vs thread count.

Paper claim: relaxed (1+beta) versions with beta < 1 beat beta = 1 by up
to ~10% and kLSM by ~40% at higher thread counts; beta = 0 is fastest at
low thread counts but loses beyond ~8 threads due to excessive
relaxation (wasted relaxations overwhelm the contention savings).

Reproduction: simulated parallel Dijkstra over a synthetic road network
(the California-graph substitution of DESIGN.md); runtime is simulated
completion time in megacycles — lower is better.
"""

import numpy as np
from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, KLSMPQ
from repro.graphs import (
    dijkstra,
    parallel_delta_stepping,
    parallel_dijkstra,
    road_network,
    suggest_delta,
)

THREAD_COUNTS = [1, 2, 4, 8]
GRAPH_SIZE = 2500
SEED = 33


def _mq(beta):
    def factory(threads):
        def make(engine, rng):
            return ConcurrentMultiQueue(engine, n_queues=2 * threads, beta=beta, rng=rng)

        return make

    return factory


def _klsm(threads):
    def make(engine, rng):
        return KLSMPQ(engine, relaxation=256, rng=rng)

    return make


CONTENDERS = [
    ("MQ beta=1.0", _mq(1.0)),
    ("MQ beta=0.5", _mq(0.5)),
    ("MQ beta=0.0", _mq(0.0)),
    ("kLSM k=256", _klsm),
]


def _run():
    graph = road_network(GRAPH_SIZE, rng=SEED)
    reference = dijkstra(graph, 0)
    delta = suggest_delta(graph) * 4
    rows = []
    for threads in THREAD_COUNTS:
        row = {"threads": threads}
        for name, factory in CONTENDERS:
            res = parallel_dijkstra(
                graph, 0, factory(threads), n_threads=threads, seed=SEED + threads
            )
            assert np.array_equal(res.dist, reference.dist), f"{name} wrong distances"
            row[f"{name} (Mcyc)"] = res.sim_time / 1e6
            row[f"{name} stale%"] = 100.0 * res.wasted_fraction
        # The non-priority-queue comparator, in the same simulated cycles.
        ds = parallel_delta_stepping(graph, 0, delta=delta, n_threads=threads)
        assert np.array_equal(ds.dist, reference.dist), "delta-stepping wrong distances"
        row["delta-stepping (Mcyc)"] = ds.sim_time / 1e6
        rows.append(row)
    return rows


def test_fig3_sssp(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Figure 3 — parallel SSSP runtime (Mcycles, lower is better) on a\n"
            "synthetic road network; paper shape: beta<1 beats beta=1 beats kLSM\n"
            "at high threads; beta=0 competitive early, degrades with threads"
        ),
    )
    emit("fig3_sssp", table)

    by_threads = {r["threads"]: r for r in rows}
    top = by_threads[THREAD_COUNTS[-1]]
    # beta=0.5 at least matches beta=1 at high thread count.
    assert top["MQ beta=0.5 (Mcyc)"] <= 1.05 * top["MQ beta=1.0 (Mcyc)"]
    # Both relaxed MQs clearly beat kLSM.
    assert top["MQ beta=1.0 (Mcyc)"] < top["kLSM k=256 (Mcyc)"]
    # Parallelism helps: 8 threads much faster than 1.
    assert top["MQ beta=1.0 (Mcyc)"] < 0.6 * by_threads[1]["MQ beta=1.0 (Mcyc)"]
    # beta=0 pays more wasted relaxations than beta=1 at 8 threads.
    assert top["MQ beta=0.0 stale%"] >= top["MQ beta=1.0 stale%"] - 1.0
