"""C-counterex (Appendix C): simple lock-based MultiQueues are not
distributionally linearizable — a stalled thread holding two queue locks
makes rank error grow with the stall length.

Sweeps the stall duration (as a fraction of the baseline run) and
reports mean/max rank of the concurrent MultiQueue against the unstalled
baseline, plus the benign-schedule comparison against the sequential
process (which *does* agree, Section 5's observation).
"""

from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent.linearizability import (
    multiqueue_vs_sequential,
    stalled_lock_counterexample,
)

STALL_FRACTIONS = [0.25, 0.5, 1.0, 2.0]
PARAMS = dict(n_threads=4, n_queues=8, prefill=15_000, ops_per_thread=800, seed=19)


def _run():
    rows = []
    base = stalled_lock_counterexample(stall_fraction=STALL_FRACTIONS[0], **PARAMS)
    baseline = base["baseline"]
    rows.append(
        {
            "stall (x baseline run)": 0.0,
            "mean rank": baseline.mean_rank(),
            "max rank": baseline.max_rank(),
        }
    )
    for frac in STALL_FRACTIONS:
        stalled = stalled_lock_counterexample(stall_fraction=frac, **PARAMS)["stalled"]
        rows.append(
            {
                "stall (x baseline run)": frac,
                "mean rank": stalled.mean_rank(),
                "max rank": stalled.max_rank(),
            }
        )
    report = multiqueue_vs_sequential(
        n_threads=4, n_queues=8, prefill=15_000, ops_per_thread=800, seed=23
    )
    return rows, report


def test_stall_counterexample(benchmark):
    rows, report = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Appendix C — stalled lock holder inflates rank error without bound\n"
            f"(benign schedule vs sequential: mean {report.concurrent_mean:.2f} vs "
            f"{report.sequential_mean:.2f}, KS={report.ks_statistic:.3f})"
        ),
    )
    emit("stall_counterexample", table)

    # Rank error grows monotonically-ish with stall length ...
    means = [r["mean rank"] for r in rows]
    assert means[-1] > 10 * means[0]
    assert means[2] > means[0]
    # ... while the benign schedule matches the sequential process.
    assert report.means_within(0.25)
    assert report.ks_statistic < 0.12
