"""Ablation: k-LSM relaxation factor.

The paper benchmarks kLSM at k = 256 ("found to perform best").  This
bench sweeps k and shows why: small k forces frequent shared-component
merges (contention), large k buys throughput with rank slack that
eventually stops paying.
"""

import numpy as np
from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import KLSMPQ, OpRecorder
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload, run_throughput_experiment

KS = [4, 16, 64, 256, 1024]
THREADS = 8
SEED = 91


def _measure(k):
    def make(engine, rng):
        return KLSMPQ(engine, relaxation=k, rng=rng)

    tput = run_throughput_experiment(make, THREADS, 200, prefill=4000, seed=SEED).throughput

    rec = OpRecorder()
    eng = Engine()
    model = KLSMPQ(eng, relaxation=k, rng=SEED, recorder=rec)
    model.prefill(np.random.default_rng(SEED).integers(2**40, size=10_000))
    AlternatingWorkload(model, THREADS, 600, rng=SEED + 1).spawn_on(eng)
    eng.run()
    trace = rec.rank_trace()
    return tput, trace.mean_rank(), trace.max_rank()


def _run():
    rows = []
    for k in KS:
        tput, mean_rank, max_rank = _measure(k)
        rows.append(
            {
                "k": k,
                "throughput (ops/Mcyc)": tput,
                "mean rank": mean_rank,
                "max rank": max_rank,
                "slack bound k*(P-1)": k * (THREADS - 1),
            }
        )
    return rows


def test_ablation_klsm(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Ablation — k-LSM relaxation factor at 8 threads\n"
            "small k merges constantly; large k trades rank slack for speed"
        ),
        floatfmt=".1f",
    )
    emit("ablation_klsm", table)

    by_k = {r["k"]: r for r in rows}
    # Throughput improves from tiny k to the paper's 256.
    assert by_k[256]["throughput (ops/Mcyc)"] > by_k[4]["throughput (ops/Mcyc)"]
    # Rank slack grows with k but honours the k*(P-1)+P envelope.
    assert by_k[1024]["mean rank"] > by_k[4]["mean rank"]
    for r in rows:
        assert r["max rank"] <= r["slack bound k*(P-1)"] + THREADS + 1
