"""Ablation: delta-stepping as the non-priority-queue SSSP comparator.

The paper's Figure 3 compares relaxed priority queues; the classic
alternative road to parallel SSSP is delta-stepping's bucket barriers.
This bench sweeps delta on the road network and reports the work/span
profile, then contrasts the *work overhead* of both relaxation styles:
delta-stepping's speculative relaxations vs the MultiQueue Dijkstra's
stale pops.
"""

import numpy as np
from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue
from repro.graphs import (
    delta_stepping,
    dijkstra,
    parallel_dijkstra,
    road_network,
    suggest_delta,
)

GRAPH_SIZE = 1600
SEED = 101
DELTAS_REL = [0.25, 1.0, 4.0, 16.0]  # multiples of the suggested delta


def _run():
    graph = road_network(GRAPH_SIZE, rng=SEED)
    ref = dijkstra(graph, 0)
    base_delta = suggest_delta(graph)
    rows = []
    for mult in DELTAS_REL:
        delta = max(1, int(base_delta * mult))
        res = delta_stepping(graph, 0, delta=delta)
        assert np.array_equal(res.dist, ref.dist)
        rows.append(
            {
                "method": f"delta-stepping d={delta}",
                "work (relaxations)": res.relaxations,
                "phases/barriers": res.phases,
                "est. time p=8": res.parallel_time_estimate(8),
                "work overhead vs Dijkstra": res.relaxations / max(ref.pushes, 1),
            }
        )

    def mq(engine, rng):
        return ConcurrentMultiQueue(engine, 16, beta=1.0, rng=rng)

    pd = parallel_dijkstra(graph, 0, mq, n_threads=8, seed=SEED)
    assert np.array_equal(pd.dist, ref.dist)
    rows.append(
        {
            "method": "MultiQueue Dijkstra (8 threads)",
            "work (relaxations)": pd.pops,
            "phases/barriers": 0,
            "est. time p=8": float("nan"),
            "work overhead vs Dijkstra": pd.pops / max(ref.pushes, 1),
        }
    )
    return rows


def test_ablation_delta_stepping(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Ablation — delta-stepping vs relaxed-queue SSSP (work/span view)\n"
            "both relaxation styles pay bounded extra work for parallel slack"
        ),
    )
    emit("ablation_delta_stepping", table)

    ds = [r for r in rows if r["method"].startswith("delta")]
    # Bigger delta: fewer barriers, never less work.
    assert ds[-1]["phases/barriers"] < ds[0]["phases/barriers"]
    assert ds[-1]["work (relaxations)"] >= ds[0]["work (relaxations)"] * 0.99
    # Moderate deltas keep the work overhead a small constant; the
    # largest (Bellman–Ford-like) delta shows the speculative blowup.
    for r in ds[:-1]:
        assert r["work overhead vs Dijkstra"] < 4.0
    assert ds[-1]["work overhead vs Dijkstra"] > ds[0]["work overhead vs Dijkstra"]
    # The MultiQueue's relaxation overhead is the mildest of all.
    mq_row = rows[-1]
    assert mq_row["work overhead vs Dijkstra"] < min(
        r["work overhead vs Dijkstra"] for r in ds
    )
