"""T1-max (Theorem 1 / Corollary 1): E[max top rank] = O((n/b) log(n/b)).

Sweeps n (beta=1) and beta (n=16), sampling the worst rank among queue
tops during steady state, and checks the (n/beta)(log n + log 1/beta)
envelope.  Also verifies time-uniformity: late samples look like early
samples.
"""

import numpy as np
from _helpers import emit, once

from repro.analysis.theory import envelope_constant, max_rank_bound
from repro.bench.tables import format_table
from repro.core.process import SequentialProcess

NS = [8, 16, 32, 64]
BETAS = [1.0, 0.5, 0.25]
SEED = 5


def _max_top_rank_profile(n, beta):
    prefill = 600 * n
    steps = 400 * n
    proc = SequentialProcess(n, prefill + steps, beta=beta, rng=SEED)
    run = proc.run_steady_state_sampled(prefill, steps, sample_every=max(steps // 20, 1))
    maxes = run.max_top_ranks
    half = len(maxes) // 2
    return float(maxes.mean()), float(maxes[:half].mean()), float(maxes[half:].mean())


def _run():
    rows = []
    for n in NS:
        mean_max, early, late = _max_top_rank_profile(n, 1.0)
        rows.append(
            {
                "n": n,
                "beta": 1.0,
                "E[max top rank]": mean_max,
                "early-half": early,
                "late-half": late,
                "bound": max_rank_bound(n, 1.0),
            }
        )
    for beta in BETAS[1:]:
        mean_max, early, late = _max_top_rank_profile(16, beta)
        rows.append(
            {
                "n": 16,
                "beta": beta,
                "E[max top rank]": mean_max,
                "early-half": early,
                "late-half": late,
                "bound": max_rank_bound(16, beta),
            }
        )
    return rows


def test_theory_max_rank(benchmark):
    rows = once(benchmark, _run)
    c = envelope_constant([r["E[max top rank]"] for r in rows], [r["bound"] for r in rows])
    table = format_table(
        rows,
        title=(
            "Corollary 1 — expected max rank among queue tops vs the\n"
            f"(n/beta)(log n + log 1/beta) envelope; worst constant {c:.3f}"
        ),
    )
    emit("theory_max_rank", table)

    assert c < 1.5
    # Time-uniform: late half within 1.5x of early half everywhere.
    for r in rows:
        assert r["late-half"] < 1.5 * r["early-half"] + 5
    # Growing in n.
    beta1 = [r["E[max top rank]"] for r in rows if r["beta"] == 1.0]
    assert all(np.diff(beta1) > 0)
