"""T2-equiv (Theorem 2): the exponential process has the same rank law.

Three checks:

1. *Exact coupling* — under a shared rank layout and choice stream the
   original and exponential processes pay identical costs, step by step.
2. *Marginals* — the bin holding rank r is distributed as pi, for both
   uniform and gamma-biased insertion.
3. *Independent runs* — rank traces from independently seeded original
   and exponential runs agree in distribution (small KS distance).
"""

import numpy as np
from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent.linearizability import _ks_distance
from repro.core.exponential import ExponentialProcess, coupled_removal_costs
from repro.core.policies import biased_insert_probs
from repro.core.process import SequentialProcess

N = 8
PREFILL = 4000
REMOVALS = 2000
REPS = 200


def _marginal_tv(insert_probs):
    """Total-variation distance between empirical rank placement and pi."""
    pi = insert_probs if insert_probs is not None else np.full(N, 1 / N)
    counts = np.zeros(N)
    for s in range(REPS):
        proc = ExponentialProcess(N, 64, insert_probs=insert_probs, rng=9000 + s)
        proc.generate(64)
        counts += np.bincount(proc.bin_assignment(), minlength=N)
    freq = counts / counts.sum()
    return 0.5 * float(np.abs(freq - pi).sum())


def _run():
    rows = []
    for beta in (1.0, 0.5):
        orig, expo = coupled_removal_costs(N, PREFILL, REMOVALS, beta=beta, seed=11)
        rows.append(
            {
                "check": f"exact coupling (beta={beta})",
                "statistic": "max |cost diff|",
                "value": float(np.abs(orig.ranks - expo.ranks).max()),
                "target": 0.0,
            }
        )

    rows.append(
        {
            "check": "rank-placement marginals (uniform pi)",
            "statistic": "TV distance",
            "value": _marginal_tv(None),
            "target": 0.0,
        }
    )
    pi = biased_insert_probs(N, 0.4, pattern="two-point")
    rows.append(
        {
            "check": "rank-placement marginals (gamma=0.4)",
            "statistic": "TV distance",
            "value": _marginal_tv(pi),
            "target": 0.0,
        }
    )

    # Independent-seed distributional agreement.
    seq = SequentialProcess(N, PREFILL, beta=1.0, rng=21)
    trace_seq = seq.run_prefill_drain(PREFILL, REMOVALS)
    expo = ExponentialProcess(N, PREFILL, beta=1.0, rng=22)
    expo.generate(PREFILL)
    trace_exp = expo.run_drain(REMOVALS)
    rows.append(
        {
            "check": "independent runs, original vs exponential",
            "statistic": "KS distance of rank CDFs",
            "value": _ks_distance(trace_seq.ranks, trace_exp.ranks),
            "target": 0.0,
        }
    )
    return rows


def test_exponential_equivalence(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title="Theorem 2 — rank-distribution equivalence of the exponential process",
        floatfmt=".4f",
    )
    emit("exponential_equivalence", table)

    by_check = {r["check"]: r["value"] for r in rows}
    assert by_check["exact coupling (beta=1.0)"] == 0.0
    assert by_check["exact coupling (beta=0.5)"] == 0.0
    assert by_check["rank-placement marginals (uniform pi)"] < 0.02
    assert by_check["rank-placement marginals (gamma=0.4)"] < 0.02
    assert by_check["independent runs, original vs exponential"] < 0.05
