"""T6-diverge (Theorem 6): the single-choice process diverges as
sqrt(t * n * log n), while the two-choice process stays flat.

Reports the seed-averaged max-top-rank growth curve for both processes,
the fitted log-log growth exponents, and the ratio of the single-choice
curve to the sqrt(t n log n) prediction (which should be roughly
constant over time if the law is right).
"""

import numpy as np
from _helpers import emit, once

from repro.analysis.stats import loglog_slope
from repro.analysis.theory import divergence_prediction
from repro.bench.tables import format_table
from repro.core.process import SequentialProcess
from repro.core.single_choice import SingleChoiceProcess

N = 16
PREFILL = 50_000
STEPS = 50_000
SAMPLE_EVERY = 5_000
SEEDS = [0, 1, 2, 3]


def _curve(single: bool, seed: int):
    capacity = PREFILL + STEPS
    if single:
        proc = SingleChoiceProcess(N, capacity, rng=seed)
    else:
        proc = SequentialProcess(N, capacity, beta=1.0, rng=seed)
    run = proc.run_steady_state_sampled(PREFILL, STEPS, sample_every=SAMPLE_EVERY)
    return run.sample_steps, run.max_top_ranks


def _run():
    steps = None
    single_curves, double_curves = [], []
    for seed in SEEDS:
        steps, single = _curve(True, seed)
        single_curves.append(single)
        _, double = _curve(False, seed)
        double_curves.append(double)
    single_avg = np.mean(single_curves, axis=0)
    double_avg = np.mean(double_curves, axis=0)
    rows = []
    for t, s, d in zip(steps, single_avg, double_avg):
        rows.append(
            {
                "t": int(t),
                "single-choice max rank": float(s),
                "two-choice max rank": float(d),
                "sqrt(t n log n)": divergence_prediction(int(t), N),
                "single / prediction": float(s) / divergence_prediction(int(t), N),
            }
        )
    return rows, steps, single_avg, double_avg


def test_single_choice_divergence(benchmark):
    rows, steps, single_avg, double_avg = once(benchmark, _run)
    slope_single, r2_single = loglog_slope(steps, single_avg, drop_first=2)
    slope_double, _ = loglog_slope(steps, double_avg, drop_first=2)
    table = format_table(
        rows,
        title=(
            "Theorem 6 — single-choice divergence vs two-choice stability\n"
            f"fitted growth exponents: single={slope_single:.3f} "
            f"(R^2={r2_single:.3f}), two-choice={slope_double:.3f}"
        ),
    )
    emit("single_choice_divergence", table)

    # Single-choice grows like a power law, two-choice essentially flat.
    assert slope_single > 0.3
    assert r2_single > 0.8
    assert abs(slope_double) < 0.2
    # At the final time the gap between strategies is enormous.
    assert single_avg[-1] > 10 * double_avg[-1]
