"""Ablation: MultiQueue stickiness (locality vs. rank quality).

Follow-up MultiQueue work keeps a thread's random queue choices for k
consecutive operations to win cache locality.  This bench sweeps k and
reports simulated throughput alongside measured rank error — the
trade-off a deployment has to price.
"""

import numpy as np
from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, OpRecorder
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload, run_throughput_experiment

STICKINESS = [1, 2, 4, 8, 16, 64]
N_QUEUES = 16
THREADS = 8
SEED = 41


def _measure(stickiness):
    def make(engine, rng):
        return ConcurrentMultiQueue(engine, N_QUEUES, rng=rng, stickiness=stickiness)

    tput = run_throughput_experiment(make, THREADS, 200, prefill=4000, seed=SEED).throughput

    rec = OpRecorder()
    eng = Engine()
    model = ConcurrentMultiQueue(
        eng, N_QUEUES, rng=SEED, stickiness=stickiness, recorder=rec
    )
    model.prefill(np.random.default_rng(SEED).integers(2**40, size=10_000))
    AlternatingWorkload(model, THREADS, 800, rng=SEED + 1).spawn_on(eng)
    eng.run()
    trace = rec.rank_trace()
    return tput, trace.mean_rank(), trace.quantile(0.99)


def _run():
    rows = []
    for k in STICKINESS:
        tput, mean_rank, p99 = _measure(k)
        rows.append(
            {
                "stickiness": k,
                "throughput (ops/Mcyc)": tput,
                "mean rank": mean_rank,
                "p99 rank": p99,
            }
        )
    return rows


def test_ablation_stickiness(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Ablation — MultiQueue stickiness, 16 queues / 8 threads\n"
            "locality buys throughput, costs rank quality"
        ),
    )
    emit("ablation_stickiness", table)

    by_k = {r["stickiness"]: r for r in rows}
    # Throughput improves with stickiness ...
    assert by_k[16]["throughput (ops/Mcyc)"] > by_k[1]["throughput (ops/Mcyc)"]
    # ... rank quality pays for it.
    assert by_k[64]["mean rank"] > by_k[1]["mean rank"]
