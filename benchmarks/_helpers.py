"""Shared helpers for the benchmark suite.

Each benchmark regenerates one figure/claim from the paper (see
DESIGN.md's per-experiment index), prints the same rows/series the paper
plots, and archives the table under ``benchmarks/results/`` so the
output survives pytest's stdout capture.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")


def archive_json(name: str, payload) -> pathlib.Path:
    """Archive a machine-readable payload next to the result tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return path


def archive_manifest(experiment_id: str, manifest) -> pathlib.Path:
    """Archive an orchestrator run manifest next to the experiment's table.

    ``manifest`` is a :class:`repro.orchestrate.RunManifest`; the JSON
    lands at ``benchmarks/results/<experiment_id>.manifest.json`` so the
    grid, cache hits, per-cell wall times, and git SHA of every archived
    sweep are auditable after the fact.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    return manifest.write(RESULTS_DIR / f"{experiment_id}.manifest.json")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — statistical runtime
    sampling would just re-run minutes of simulation — so every bench
    uses a single timed round and reports its scientific output via
    :func:`emit`.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
