"""Shared helpers for the benchmark suite.

Each benchmark regenerates one figure/claim from the paper (see
DESIGN.md's per-experiment index), prints the same rows/series the paper
plots, and archives the table under ``benchmarks/results/`` so the
output survives pytest's stdout capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — statistical runtime
    sampling would just re-run minutes of simulation — so every bench
    uses a single timed round and reports its scientific output via
    :func:`emit`.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
