"""Bias robustness (Theorem 1 with gamma > 0): the guarantees survive
insertion bias bounded by gamma, *for beta = Omega(gamma)*.

Sweeps gamma for the adversarial two-point bias pattern at beta in
{1.0, 0.5}.  Two regimes emerge, both matching the paper:

* beta = 1: the two-choice preference absorbs the full gamma range —
  mean rank moves by a small constant factor;
* beta = 0.5 with large gamma violates beta = Omega(gamma)'s premise and
  costs blow up — the empirical counterpart of the paper's observation
  that 'the epsilon >= delta bias assumptions break down' past the
  beta ~ 0.5 inflection.
"""

from _helpers import emit, once

from repro.bench.tables import format_table
from repro.core.policies import biased_insert_probs, effective_gamma
from repro.core.process import SequentialProcess

N = 16
GAMMAS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
BETAS = [1.0, 0.5]
PREFILL = 12_000
STEPS = 8_000
SEEDS = [0, 1]


def _measure(gamma, beta, seed):
    pi = biased_insert_probs(N, gamma, pattern="two-point") if gamma else None
    proc = SequentialProcess(N, PREFILL + STEPS, beta=beta, insert_probs=pi, rng=seed)
    run = proc.run_steady_state_sampled(PREFILL, STEPS, sample_every=1000)
    return run.trace.mean_rank(), float(run.max_top_ranks.mean())


def _run():
    rows = []
    for beta in BETAS:
        for gamma in GAMMAS:
            means, maxes = zip(*(_measure(gamma, beta, s) for s in SEEDS))
            pi = biased_insert_probs(N, gamma, pattern="two-point") if gamma else None
            rows.append(
                {
                    "beta": beta,
                    "gamma": gamma,
                    "realized gamma": effective_gamma(pi) if pi is not None else 0.0,
                    "mean rank": sum(means) / len(means),
                    "E[max top rank]": sum(maxes) / len(maxes),
                }
            )
    return rows


def test_bias_robustness(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Bias robustness — two-point adversarial insertion bias, n=16\n"
            "paper claim: rank guarantees survive gamma-bounded bias"
        ),
    )
    emit("bias_robustness", table)

    ranks = {(r["beta"], r["gamma"]): r["mean rank"] for r in rows}
    # beta=1 absorbs the full bias range at a small constant factor.
    for gamma in GAMMAS:
        assert ranks[(1.0, gamma)] < 2.0 * ranks[(1.0, 0.0)]
    # beta=0.5 with modest gamma (beta = Omega(gamma) plausible) holds up.
    for gamma in (0.1, 0.2):
        assert ranks[(0.5, gamma)] < 2.0 * ranks[(0.5, 0.0)]
    # ... but gamma far beyond the beta = Omega(gamma) regime degrades,
    # demonstrating the theorem's premise is real, not an artifact.
    assert ranks[(0.5, 0.5)] > 3.0 * ranks[(0.5, 0.0)]
