"""Extension bench: the process under general priority insertions.

The paper analyzes monotone (FIFO) insertions and argues (Sec. 5) the
practical structure faces general priorities.  This bench measures the
(1+beta) rank guarantee across insertion orders — increasing (the
analyzed case), i.i.d. random, decreasing (maximally inverting), zipf
(duplicate-heavy), and sawtooth (Dijkstra-like runs) — at two betas.
"""

from _helpers import emit, once

from repro.bench.tables import format_table
from repro.core.general import GeneralPriorityProcess, priority_sequence

N = 16
PREFILL = 12_000
STEPS = 10_000
KINDS = ["increasing", "random", "sawtooth", "zipf", "decreasing"]
BETAS = [1.0, 0.5]
SEED = 23


def _run():
    rows = []
    for kind in KINDS:
        row = {"priority order": kind}
        for beta in BETAS:
            seq = priority_sequence(kind, PREFILL + STEPS, rng=SEED)
            proc = GeneralPriorityProcess(seq, N, beta=beta, rng=SEED + 1)
            trace = proc.run_steady_state(PREFILL, STEPS)
            row[f"mean rank (beta={beta})"] = trace.mean_rank()
            row[f"p99 rank (beta={beta})"] = trace.quantile(0.99)
        rows.append(row)
    return rows


def test_general_priorities(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "General priority insertions — (1+beta) rank cost by arrival order\n"
            "n=16; 'increasing' is the analyzed FIFO case"
        ),
    )
    emit("general_priorities", table)

    by_kind = {r["priority order"]: r for r in rows}
    # The analyzed O(n) behaviour holds for every insertion order here.
    for kind in KINDS:
        assert by_kind[kind]["mean rank (beta=1.0)"] < 3.0 * N, kind
    # Random arrivals cost no more than a small factor over FIFO.
    assert (
        by_kind["random"]["mean rank (beta=1.0)"]
        < 2.5 * by_kind["increasing"]["mean rank (beta=1.0)"]
    )
    # beta=0.5 costs more than beta=1 under every order.
    for kind in KINDS:
        assert (
            by_kind[kind]["mean rank (beta=0.5)"]
            > by_kind[kind]["mean rank (beta=1.0)"] * 0.9
        ), kind
