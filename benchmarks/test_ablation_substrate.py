"""Ablation: sequential priority-queue substrate (real Python timing).

The MultiQueue composes n sequential queues; the paper uses boost heaps.
This is the one bench where *wall-clock* pytest-benchmark timing is the
point: it times a fixed MultiQueue churn workload over each substrate in
``repro.pqueues`` so substrate regressions show up as real slowdowns.
Rank behaviour is substrate-independent (asserted).
"""

import numpy as np
import pytest

from repro.core.multiqueue import MultiQueue
from repro.pqueues import BinaryHeap, DaryHeap, PairingHeap, SkipListPQ

SUBSTRATES = {
    "binary": BinaryHeap,
    "dary4": lambda: DaryHeap(4),
    "pairing": PairingHeap,
    "skiplist": lambda: SkipListPQ(rng=0),
}

PREFILL = 5_000
CHURN = 10_000


def _churn(queue_factory):
    mq = MultiQueue(8, beta=1.0, queue_factory=queue_factory, rng=3)
    values = np.random.default_rng(1).integers(2**40, size=PREFILL + CHURN)
    for v in values[:PREFILL]:
        mq.insert(int(v))
    out = 0
    for v in values[PREFILL:]:
        mq.insert(int(v))
        out += mq.delete_min().priority & 1
    return out


@pytest.mark.parametrize("name", sorted(SUBSTRATES))
def test_ablation_substrate(benchmark, name):
    result = benchmark.pedantic(
        _churn, args=(SUBSTRATES[name],), rounds=3, iterations=1, warmup_rounds=1
    )
    # The churn result is a deterministic function of the seed and the
    # two-choice decisions, which depend only on the MultiQueue's RNG —
    # not on the substrate.  All substrates must agree exactly.
    assert result == _churn(BinaryHeap)
