"""Orch-scaling: the sweep orchestrator's smoke benchmark.

Runs the n=256 replica sweep (the vector subsystem's headline grid, at
smoke size) three ways — serial in-process, fanned out across worker
processes with a cold cache, and again with the warm cache — and checks
the orchestrator's two contracts:

* **Identical rows** regardless of worker count or cache state (cells
  are seeded deterministically and payloads are canonical JSON).
* **Resumability** — the warm re-run computes nothing: 100% cache hits.

Near-linear multi-core scaling is asserted only when the machine
actually has the cores (CI runners may expose one); the measured
speedup is archived either way.
"""

from __future__ import annotations

import os
import time

from _helpers import archive_manifest, emit, once

from repro.bench.harness import sweep_cells
from repro.bench.tables import format_table
from repro.orchestrate import strip_volatile
from repro.vector.sweep import sweep_cell_backend

N = 256
BETAS = [1.0, 0.75, 0.5, 0.25]
SEEDS = [0, 1]
REPLICAS = 16
PREFILL = 4000
STEPS = 10_000
#: At least 2 so the process-pool path is always exercised; the scaling
#: assertion below still gates on the cores actually present.
WORKERS = min(4, max(2, os.cpu_count() or 1))

#: Minimum parallel speedup demanded per extra worker actually backed by
#: a core — lenient (0.45 of linear) because CI boxes share cores.
SCALING_FLOOR_PER_CORE = 0.45


def _sweep(workers=0, cache_dir=None):
    start = time.perf_counter()
    run = sweep_cells(
        sweep_cell_backend,
        "beta",
        BETAS,
        SEEDS,
        workers=workers,
        cache_dir=cache_dir,
        backend="vector",
        n=N,
        replicas=REPLICAS,
        prefill=PREFILL,
        steps=STEPS,
    )
    return run, time.perf_counter() - start


def test_orchestrate_scaling(benchmark, tmp_path):
    cache_dir = tmp_path / "cells"

    def _run():
        serial, serial_s = _sweep()
        parallel, parallel_s = _sweep(workers=WORKERS, cache_dir=cache_dir)
        warm, warm_s = _sweep(workers=WORKERS, cache_dir=cache_dir)
        return serial, serial_s, parallel, parallel_s, warm, warm_s

    serial, serial_s, parallel, parallel_s, warm, warm_s = once(benchmark, _run)

    n_cells = len(BETAS) * len(SEEDS)
    rows = [
        {"mode": "serial", "workers": 1, "wall_s": serial_s,
         "cache_hits": 0, "speedup": 1.0},
        {"mode": f"parallel x{WORKERS} (cold cache)", "workers": WORKERS,
         "wall_s": parallel_s, "cache_hits": parallel.manifest.cache_hits,
         "speedup": serial_s / parallel_s},
        {"mode": f"parallel x{WORKERS} (warm cache)", "workers": WORKERS,
         "wall_s": warm_s, "cache_hits": warm.manifest.cache_hits,
         "speedup": serial_s / warm_s},
    ]
    emit(
        "orchestrate_scaling",
        format_table(
            rows,
            title=(
                "Sweep orchestrator — parallel fan-out and resumable cache\n"
                f"grid: {len(BETAS)} betas x {len(SEEDS)} seeds = {n_cells} "
                f"cells of the n={N} replica sweep "
                f"(replicas={REPLICAS}, steps={STEPS}); "
                f"{os.cpu_count()} core(s) available"
            ),
            floatfmt=".3f",
        ),
    )
    archive_manifest("orchestrate_scaling", warm.manifest)

    # Contract 1: rows identical across execution modes (timing fields
    # are measurement, not simulation output — they are the only delta).
    reference = strip_volatile(serial.payloads())
    assert strip_volatile(parallel.payloads()) == reference
    assert strip_volatile(warm.payloads()) == reference

    # Contract 2: the warm re-run is 100% cache hits.
    assert warm.manifest.cache_hits == n_cells
    assert warm.manifest.cache_misses == 0

    # Contract 3: near-linear scaling, when the cores exist to scale onto.
    cores = os.cpu_count() or 1
    effective = min(WORKERS, cores)
    if effective > 1:
        floor = 1.0 + SCALING_FLOOR_PER_CORE * (effective - 1)
        speedup = serial_s / parallel_s
        assert speedup >= floor, (
            f"parallel sweep only {speedup:.2f}x serial with {WORKERS} "
            f"workers on {cores} cores; need >= {floor:.2f}x"
        )
