"""Orch-queue: the multi-host job queue's chaos smoke benchmark.

Runs the smoke-size replica sweep through the lease-based job queue
three ways — one worker, three concurrent workers, and three workers
with a chaos plan (one killed mid-lease, one committing a zombie write
past its lease TTL) — and checks the distributed contracts:

* **Identical rows** regardless of worker count, crashes, or takeovers:
  the queue's output is byte-identical (timing fields stripped) to a
  serial in-process sweep of the same grid.
* **At-most-once commits** — the chaos run's merged manifest counts the
  lease takeovers and the fenced zombie write, and exactly ``n_cells``
  rows survive.
* **No lost work** — a second pass over a drained queue claims nothing.

Workers are thread-hosted here (an injected kill unwinds one worker's
loop via an exception); the CI ``orchestrate-distributed`` job runs the
same scenario with real processes and real SIGKILL.
"""

from __future__ import annotations

import threading
import time

from _helpers import archive_manifest, emit, once

from repro.bench.tables import format_table
from repro.orchestrate import (
    CellFault,
    InjectedWorkerCrash,
    JobQueue,
    QueueWorker,
    SweepFaultPlan,
    expand_grid,
    run_cells,
    strip_volatile,
)
from repro.vector.sweep import sweep_cell_backend

N = 256
BETAS = [1.0, 0.75, 0.5, 0.25]
SEEDS = [0, 1]
REPLICAS = 16
PREFILL = 4000
STEPS = 10_000
LEASE_TTL_S = 1.5
HEARTBEAT_S = 0.3

FIXED = dict(backend="vector", n=N, replicas=REPLICAS, prefill=PREFILL, steps=STEPS)


def _grid():
    return expand_grid("beta", BETAS, SEEDS, **FIXED)


def _drain(queue, n_workers, fault_plan=None):
    """Drive n thread-hosted workers to completion; returns wall time."""
    workers = [
        QueueWorker(
            queue, sweep_cell_backend,
            worker_id=f"bench-w{i}", fault_plan=fault_plan, poll_s=0.05,
        )
        for i in range(n_workers)
    ]

    def drive(worker):
        try:
            worker.run()
        except InjectedWorkerCrash:
            pass  # the injected crash scenario: queue-level checks below

    start = time.perf_counter()
    threads = [threading.Thread(target=drive, args=(w,)) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    assert not any(t.is_alive() for t in threads), "benchmark worker hung"
    return time.perf_counter() - start


def test_orchestrate_distributed(benchmark, tmp_path):
    grid = _grid()
    chaos_plan = SweepFaultPlan(
        (
            CellFault("kill", params={"beta": 0.75}, seed=1, attempts=(1,)),
            CellFault(
                "zombie", params={"beta": 0.5}, seed=0, attempts=(1,),
                sleep_s=LEASE_TTL_S * 2 + 0.5,
            ),
        )
    )

    def _run():
        serial_start = time.perf_counter()
        serial = run_cells(sweep_cell_backend, grid)
        serial_s = time.perf_counter() - serial_start

        solo_q = JobQueue(
            tmp_path / "solo", sweep_cell_backend, grid,
            lease_ttl_s=LEASE_TTL_S, heartbeat_s=HEARTBEAT_S,
        )
        solo_s = _drain(solo_q, 1)

        trio_q = JobQueue(
            tmp_path / "trio", sweep_cell_backend, grid,
            lease_ttl_s=LEASE_TTL_S, heartbeat_s=HEARTBEAT_S,
        )
        trio_s = _drain(trio_q, 3)

        chaos_q = JobQueue(
            tmp_path / "chaos", sweep_cell_backend, grid,
            lease_ttl_s=LEASE_TTL_S, heartbeat_s=HEARTBEAT_S,
        )
        chaos_s = _drain(chaos_q, 3, fault_plan=chaos_plan)
        return serial, serial_s, solo_q, solo_s, trio_q, trio_s, chaos_q, chaos_s

    serial, serial_s, solo_q, solo_s, trio_q, trio_s, chaos_q, chaos_s = once(
        benchmark, _run
    )

    chaos_m = chaos_q.merged_manifest()
    rows = [
        {"mode": "serial in-process", "wall_s": serial_s,
         "takeovers": 0, "fenced": 0},
        {"mode": "queue, 1 worker", "wall_s": solo_s,
         "takeovers": 0, "fenced": 0},
        {"mode": "queue, 3 workers", "wall_s": trio_s,
         "takeovers": trio_q.merged_manifest().takeovers, "fenced": 0},
        {"mode": "queue, 3 workers + kill + zombie", "wall_s": chaos_s,
         "takeovers": chaos_m.takeovers, "fenced": chaos_m.zombie_writes_fenced},
    ]
    emit(
        "orchestrate_distributed",
        format_table(
            rows,
            title=(
                "Multi-host job queue — lease takeover and zombie fencing\n"
                f"grid: {len(BETAS)} betas x {len(SEEDS)} seeds = {len(grid)} "
                f"cells of the n={N} replica sweep (replicas={REPLICAS}, "
                f"steps={STEPS}); lease TTL {LEASE_TTL_S}s, "
                f"heartbeat {HEARTBEAT_S}s"
            ),
            floatfmt=".3f",
        ),
    )
    archive_manifest("orchestrate_distributed", chaos_m)

    # Contract 1: identical rows in every mode, chaos included.
    reference = strip_volatile(serial.payloads())
    for queue in (solo_q, trio_q, chaos_q):
        assert queue.drained(), queue.counts()
        payloads, failures = queue.collect()
        assert failures == []
        assert strip_volatile(payloads) == reference

    # Contract 2: the chaos run recorded its faults and nothing else —
    # one takeover for the killed worker, one for the zombie's cell,
    # exactly one fenced late write, a full set of rows.
    assert chaos_m.takeovers == 2
    assert chaos_m.zombie_writes_fenced == 1
    assert len(chaos_m.cells) == len(grid)

    # Contract 3: a drained queue yields no further work.
    late = QueueWorker(chaos_q, sweep_cell_backend, worker_id="latecomer")
    report = late.run()
    assert report.cells_claimed == 0
