"""Supervised recovery: the live service survives SIGKILL and zombies.

The claim the simulator's fault models (``ext-chaos``) could only
gesture at: when a real shard-owner *process* is SIGKILLed mid-publish,
a supervisor respawns it from the durable shm snapshot + commit journal
and the service keeps the paper's guarantees — every prefilled element
is conserved (journal-exact, not sampled), no ring slot is torn, no
fenced zombie commits an operation, and the post-takeover rank
distribution still matches the exact stationary oracle.

One seeded chaos run: ``KILLS`` SIGKILLs (the schedule lands at least
one mid-stream) plus one SIGSTOP zombie that is fenced by an epoch bump
and exits ``EXIT_FENCED`` on resume.  Archives the incident table and
the full machine-readable result as ``BENCH_service_recovery.json``.

The post-recovery KS gate mirrors the calibrated envelope documented in
``tests/service/test_supervisor.py``: a paced 3-shard live run on a
busy/small host sits at KS ~0.05-0.10 against the oracle even with no
faults, so the gate is 0.15 — real recovery bugs (lost or duplicated
elements, a successor booting from a stale snapshot) push it past 0.2.
"""

import os

from _helpers import archive_json, emit, once

from repro.bench.tables import format_table
from repro.service.loadgen import ScheduleSpec
from repro.service.server import EXIT_FENCED
from repro.service.supervisor import ChaosSpec, run_chaos_service

SHARDS = 3
WORKERS = 2
OPS = 12_000
PREFILL = 512
RATE = 3_000.0
BETA = 1.0
SEED = 0

KILLS = 3
ZOMBIES = 1
DEAD_AFTER_S = 0.35
ORACLE_KS_GATE = 0.15


def _run():
    spec = ScheduleSpec(
        mode="poisson", ops=OPS, prefill=PREFILL, rate=RATE, seed=SEED
    )
    chaos = ChaosSpec(
        kills=KILLS, stalls=0, zombies=ZOMBIES, seed=SEED,
        start_s=0.25, window_s=1.2,
    )
    result = run_chaos_service(
        SHARDS,
        WORKERS,
        spec,
        chaos=chaos,
        beta=BETA,
        seed=SEED,
        dead_after_s=DEAD_AFTER_S,
        snapshot_every=256,
        rank_sample_every=4,
    )
    result["cores"] = os.cpu_count()
    return result


def test_service_recovery(benchmark):
    result = once(benchmark, _run)
    supervision = result["supervision"]
    conservation = result["conservation"]
    post = result["post_recovery"]

    incident_rows = [
        {
            "shard": inc["shard"],
            "kind": inc["kind"],
            "action": inc["action"],
            "recovery ms": round(inc["recovery_s"] * 1e3, 1)
            if inc["recovery_s"] is not None
            else None,
            "replayed": inc["replayed"],
            "heap": inc["recovered_heap"],
            "ok": inc["takeover_ok"],
        }
        for inc in supervision["incidents"]
    ]
    headline = [
        {
            "takeovers": supervision["takeovers"],
            "ops/s": round(result["throughput_ops_s"], 0),
            "conserved": conservation["ok"],
            "residual": conservation["residual_total"],
            "torn": result["audit"]["torn"],
            "zombie commits": conservation["epoch_regressions"],
            "post-recovery ks": round(post["oracle_ks"], 3)
            if post["oracle_ks"] is not None
            else None,
        }
    ]
    table = (
        format_table(
            headline,
            title=(
                f"Supervised recovery: {KILLS} SIGKILLs + {ZOMBIES} zombie, "
                f"{SHARDS} shards, {WORKERS} workers\n"
                f"beta={BETA}, ops={OPS}, prefill={PREFILL}, "
                f"{result['cores']} cores"
            ),
        )
        + "\n\n"
        + format_table(
            incident_rows,
            title="recovery incidents (journal replay per takeover)",
        )
    )
    emit("service_recovery", table)
    result.pop("rank_values", None)
    archive_json("BENCH_service_recovery", result)

    # Every planned fault fired on a live owner.
    missed = [ev for ev in result["chaos"]["events"] if ev["kind"].endswith("-missed")]
    assert not missed, f"chaos schedule missed faults: {missed}"
    # Final owner generation exits clean; retirees died by SIGKILL or fence.
    assert result["owner_exitcodes"] == [0] * SHARDS
    assert all(
        row["exitcode"] in (-9, EXIT_FENCED)
        for row in supervision["retired_exitcodes"]
    ), supervision["retired_exitcodes"]
    assert supervision["takeovers"] >= 1
    # Journal-exact conservation: nothing lost, nothing duplicated.
    assert conservation["ok"], conservation
    assert conservation["events_match"]
    assert conservation["residual_total"] == PREFILL
    assert conservation["epoch_regressions"] == 0, "a fenced zombie committed"
    assert result["audit"]["torn"] == 0
    assert result["audit"]["pending"] == 0
    assert result["ops_processed"] == OPS
    # Successors boot from real state and the rank law survives takeover.
    assert all(inc["recovered_heap"] > 0 for inc in supervision["incidents"])
    assert any(inc["replayed"] > 0 for inc in supervision["incidents"])
    assert post["n_ranks"] >= 300, post
    assert post["oracle_ks"] < ORACLE_KS_GATE, post
