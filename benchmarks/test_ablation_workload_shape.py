"""Ablation: workload shape (alternating vs producer/consumer split).

The paper's throughput figure uses alternating insert/deleteMin threads;
the benchmark framework it builds on (Gruber et al.) also measures
dedicated-role threads.  This bench compares shapes for the MultiQueue
and Lindén–Jonsson at 8 threads.  The nuance it surfaces: LJ's
bottleneck is exclusively ``deleteMin`` (the hot head line), so its
deficit shrinks as the deleter share falls — and at 6 producers / 2
consumers LJ actually wins, because two deleters barely contend while
LJ's inserts are cheaper than the MultiQueue's lock round-trips.  The
paper's alternating shape (50% deletes per thread) is the regime its
Figure 1 claims cover.
"""

from _helpers import emit, once

from repro.bench.tables import format_table
from repro.concurrent import ConcurrentMultiQueue, LindenJonssonPQ
from repro.sim.engine import Engine
from repro.sim.workload import AlternatingWorkload, ProducerConsumerWorkload

THREADS = 8
OPS = 150
PREFILL = 4000
SEED = 3

SHAPES = [
    ("alternating 8", None),
    ("split 4p/4c", (4, 4)),
    ("split 6p/2c", (6, 2)),
]


def _throughput(make_model, shape):
    eng = Engine()
    model = make_model(eng)
    model.prefill(range(PREFILL))
    if shape is None:
        workload = AlternatingWorkload(model, THREADS, OPS, rng=SEED)
        total_ops = 2 * THREADS * OPS
    else:
        producers, consumers = shape
        workload = ProducerConsumerWorkload(model, producers, consumers, OPS, rng=SEED)
        total_ops = (producers + consumers) * OPS
    workload.spawn_on(eng)
    eng.run()
    return total_ops / (eng.now / 1e6)


def _run():
    rows = []
    for shape_name, shape in SHAPES:
        mq = _throughput(
            lambda eng: ConcurrentMultiQueue(eng, 2 * THREADS, rng=SEED), shape
        )
        lj = _throughput(lambda eng: LindenJonssonPQ(eng, rng=SEED), shape)
        rows.append(
            {
                "workload": shape_name,
                "MultiQueue (ops/Mcyc)": mq,
                "Linden-Jonsson (ops/Mcyc)": lj,
                "MQ / LJ": mq / lj,
            }
        )
    return rows


def test_ablation_workload_shape(benchmark):
    rows = once(benchmark, _run)
    table = format_table(
        rows,
        title=(
            "Ablation — workload shape at 8 threads\n"
            "MQ dominates delete-heavy shapes; LJ recovers as deleters thin out"
        ),
        floatfmt=".1f",
    )
    emit("ablation_workload_shape", table)

    by_shape = {r["workload"]: r for r in rows}
    # Delete-heavy shapes: the MultiQueue dominates decisively.
    assert by_shape["alternating 8"]["MQ / LJ"] > 2.0
    assert by_shape["split 4p/4c"]["MQ / LJ"] > 1.5
    # Insert-dominated shape: LJ's head line is barely contended and its
    # advantage returns — the ratio drops below the delete-heavy shapes.
    assert (
        by_shape["split 6p/2c"]["MQ / LJ"]
        < by_shape["split 4p/4c"]["MQ / LJ"]
        < by_shape["alternating 8"]["MQ / LJ"]
    )
    # The MultiQueue itself is shape-insensitive (its costs are symmetric).
    mq_values = [r["MultiQueue (ops/Mcyc)"] for r in rows]
    assert max(mq_values) < 1.3 * min(mq_values)
